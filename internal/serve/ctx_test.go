package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// TestLookupCtxBitIdentical: a context that can never fire must take the
// exact Lookup path and return identical candidates.
func TestLookupCtxBitIdentical(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 2, MaxBatch: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := g.Entities[i].Label
		want := m.Lookup(q, 10)
		got, err := sv.LookupCtx(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameCandidates(t, "ctx vs direct", want, got)
		// And with a live (but un-fired) deadline.
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		got, err = sv.LookupCtx(ctx, q, 10)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		sameCandidates(t, "deadline ctx vs direct", want, got)
	}
}

func TestLookupCtxAlreadyDone(t *testing.T) {
	_, m := testModel(t)
	sv, err := New(m, Options{Shards: 1, MaxBatch: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.LookupCtx(ctx, "anything", 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLookupCtxCacheHitDespiteDeadline: a cache hit is already paid for and
// is served even when the context has fired.
func TestLookupCtxCacheHitDespiteDeadline(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 1, MaxBatch: -1, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	q := g.Entities[0].Label
	want := sv.Lookup(q, 5) // warm the cache
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := sv.LookupCtx(ctx, q, 5)
	if err != nil {
		t.Fatalf("cache hit rejected under dead ctx: %v", err)
	}
	sameCandidates(t, "cached under dead ctx", want, got)
}

// TestCoalescerCtxGroup: concurrent ctx-carrying lookups coalesce into
// batches and still return bit-identical results.
func TestCoalescerCtxGroup(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 1, MaxBatch: 8, Window: 2 * time.Millisecond, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q := g.Entities[c%8].Label
			want := m.Lookup(q, 5)
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			got, err := sv.LookupCtx(ctx, q, 5)
			if err != nil {
				t.Errorf("coalesced ctx lookup: %v", err)
				return
			}
			sameCandidates(t, "coalesced ctx", want, got)
		}(c)
	}
	wg.Wait()
	if st := sv.Stats(); st.Coalescer.Batches == 0 {
		t.Fatal("nothing coalesced")
	}
}

// TestCoalescerDeadlineFlush: a batch must flush no later than its earliest
// member's deadline, not at the full window.
func TestCoalescerDeadlineFlush(t *testing.T) {
	_, m := testModel(t)
	// A very long window: without deadline-aware arming the lone request
	// would sit in the batch for the full second.
	sv, err := New(m, Options{Shards: 1, MaxBatch: 64, Window: time.Second, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sv.LookupCtx(ctx, "deadline flush probe", 5)
	took := time.Since(start)
	if err != nil {
		t.Fatalf("deadline-flushed lookup failed: %v", err)
	}
	if took > 500*time.Millisecond {
		t.Fatalf("lookup took %v: batch waited past its member's deadline", took)
	}
}

// TestCoalescerAbandoned: a caller whose ctx fires while its request is
// batched gets ctx.Err() promptly, and the abandoned counter records it.
func TestCoalescerAbandoned(t *testing.T) {
	_, m := testModel(t)
	sv, err := New(m, Options{Shards: 1, MaxBatch: 64, Window: 200 * time.Millisecond, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := sv.LookupCtx(ctx, "abandoned probe", 5)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enqueue inside the window
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned caller never returned")
	}
	// The abandoned request is filtered out at dispatch; after the window the
	// stats must show it.
	deadline := time.Now().Add(2 * time.Second)
	for sv.Stats().Coalescer.Abandoned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned counter never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBulkLookupCtxBitIdentical mirrors the single-query guarantee for
// explicit batches.
func TestBulkLookupCtxBitIdentical(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 2, MaxBatch: -1})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		g.Entities[0].Label, g.Entities[1].Label,
		g.Entities[0].Label, // duplicate collapses
		g.Entities[2].Label,
	}
	want := sv.BulkLookup(queries, 5)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := sv.BulkLookupCtx(ctx, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("%d vs %d result rows", len(want), len(got))
	}
	for i := range want {
		sameCandidates(t, "bulk ctx row", want[i], got[i])
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sv.BulkLookupCtx(dead, []string{"fresh uncached query"}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx bulk err = %v, want context.Canceled", err)
	}
}

// TestHybridRerankDeterministic: re-ranking is a pure function of its
// inputs — same order every time, input never mutated, scores preserved.
func TestHybridRerankDeterministic(t *testing.T) {
	g, m := testModel(t)
	label := g.Label
	q := g.Entities[5].Label
	cands := m.Lookup(q, 10)
	orig := append([]lookup.Candidate(nil), cands...)

	first := HybridRerank(q, cands, label)
	for i := 0; i < 5; i++ {
		again := HybridRerank(q, cands, label)
		sameCandidates(t, "hybrid rerun", first, again)
	}
	sameCandidates(t, "input mutated", orig, cands)

	// Same multiset of candidates, scores intact.
	seen := map[kg.EntityID]float64{}
	for _, c := range cands {
		seen[c.ID] = c.Score
	}
	for _, c := range first {
		score, ok := seen[c.ID]
		if !ok {
			t.Fatalf("rerank invented candidate %d", c.ID)
		}
		if score != c.Score {
			t.Fatalf("rerank changed score of %d: %v vs %v", c.ID, score, c.Score)
		}
	}

	// An exact surface-form match must rank first: its normalized similarity
	// is 1.0, the maximum.
	if sim := strutil.Similarity(q, q); sim != 1 {
		t.Fatalf("self-similarity = %v", sim)
	}
	exactFirst := HybridRerank(g.Label(first[len(first)-1].ID), cands, label)
	if got := label(exactFirst[0].ID); got != label(first[len(first)-1].ID) {
		// The exact match could collide with another label normalizing the
		// same; assert similarity ordering instead of the specific entity.
		t.Logf("exact match ranked %q first (tie on normalized form)", got)
	}
}
