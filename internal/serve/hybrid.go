package serve

import (
	"slices"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// HybridRerank re-orders an embedding top-k by exact string similarity —
// the hybrid lexical+embedding retrieval mode (PAPERS.md "Explore Entity
// Embedding Effectiveness in Entity Retrieval"): the embedding recalls
// semantically close entities cheaply, then the normalized Levenshtein
// ratio between the query and each candidate's label re-ranks the short
// list so exact surface-form matches win ties the embedding can't see.
//
// label resolves a candidate to its display label (the graph's Label
// method); both sides are compared in mention-normalized form so the
// ordering is insensitive to case and punctuation, exactly like the
// embedding itself. Ordering is bit-deterministic: similarity descending,
// then embedding score descending, then entity id ascending. The input
// slice is never mutated — cached candidate slices are shared read-only —
// and the candidates' scores are preserved (only the order changes), so
// hybrid mode composes with the mention cache for free.
func HybridRerank(q string, cands []lookup.Candidate, label func(kg.EntityID) string) []lookup.Candidate {
	if len(cands) == 0 {
		return cands
	}
	norm := core.NormalizeMention(q)
	type ranked struct {
		c   lookup.Candidate
		sim float64
	}
	rs := make([]ranked, len(cands))
	for i, c := range cands {
		rs[i] = ranked{c: c, sim: strutil.Similarity(norm, core.NormalizeMention(label(c.ID)))}
	}
	slices.SortFunc(rs, func(a, b ranked) int {
		switch {
		case a.sim > b.sim:
			return -1
		case a.sim < b.sim:
			return 1
		case a.c.Score > b.c.Score:
			return -1
		case a.c.Score < b.c.Score:
			return 1
		case a.c.ID < b.c.ID:
			return -1
		case a.c.ID > b.c.ID:
			return 1
		}
		return 0
	})
	out := make([]lookup.Candidate, len(cands))
	for i, r := range rs {
		out[i] = r.c
	}
	return out
}
