// Package serve is the throughput substrate between the HTTP layer and
// core.EmbLookup — the deployment shape of embedding-as-a-service systems
// like KGvec2go and Wembedder, where one shared entity index answers heavy
// concurrent traffic of small lookups. Three cooperating pieces raise
// throughput without changing any result:
//
//   - sharded scans (index.Sharded via core.WithShardedIndex): one query
//     fans its index scan across S row shards and merges per-shard top-k
//     heaps; batches sweep shard-major for locality
//   - query coalescing (Coalescer): concurrent Lookup calls collect into a
//     micro-batch dispatched as one BulkLookup, amortizing ADC-table
//     construction and scratch checkout across callers
//   - a sharded mention cache (MentionCache): table-annotation traffic
//     repeats the same cell strings constantly, so results are cached under
//     the embedding-invariant key core.NormalizeMention(q)
//
// Every path returns bit-identical candidates to a direct
// core.EmbLookup.Lookup call (see DESIGN.md §7).
package serve

import (
	"context"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// Options configures the serving substrate. The zero value enables every
// piece at defaults; use the negative sentinels to disable pieces.
type Options struct {
	// Shards is the index shard count: 0 picks a default (4), 1 keeps the
	// index unsharded.
	Shards int
	// MaxBatch flushes a coalescer batch at this many queries (0 = 32;
	// negative disables coalescing entirely — every Lookup goes solo).
	MaxBatch int
	// Window flushes a non-full coalescer batch this long after its first
	// query arrived (0 = 200µs).
	Window time.Duration
	// CacheSize is the mention cache capacity in entries (0 = 4096;
	// negative disables the cache).
	CacheSize int
	// Parallelism bounds worker fan-out for scans and batches
	// (≤0 = GOMAXPROCS).
	Parallelism int
	// Registry receives the substrate's metrics — serve latency, the
	// normalize stage histogram, cache and coalescer collectors (nil =
	// obs.Default()). Benchmarks hand each instance a fresh registry so
	// phases don't contaminate each other.
	Registry *obs.Registry
}

// Serve answers lookups through the cache, the coalescer, and the sharded
// index. Safe for concurrent use.
type Serve struct {
	model *core.EmbLookup
	cache *MentionCache
	co    *Coalescer
	opts  Options

	latency        *obs.Histogram // end-to-end serve.Lookup latency
	stageNormalize *obs.Histogram // the serve-side stage of the lookup pipeline
}

// New builds the serving substrate over a trained model. With
// opts.Shards > 1 the model's index is wrapped for sharded scans (the model
// itself is shared, not retrained); PQ and Flat indexes support this, IVF
// refuses and should be served with Shards = 1.
func New(model *core.EmbLookup, opts Options) (*Serve, error) {
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.Shards > 1 {
		sharded, err := model.WithShardedIndex(opts.Shards, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		model = sharded
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Serve{model: model, opts: opts}
	s.latency = reg.Histogram("emblookup_serve_lookup_seconds")
	s.stageNormalize = reg.Histogram(obs.Labels("emblookup_lookup_stage_seconds", "stage", "normalize"))
	if opts.CacheSize > 0 {
		s.cache = NewMentionCache(opts.CacheSize)
		s.cache.Observe(reg)
	}
	if opts.MaxBatch >= 0 {
		bulk := func(queries []string, k int) [][]lookup.Candidate {
			return model.BulkLookup(queries, k, opts.Parallelism)
		}
		bulkCtx := func(ctx context.Context, queries []string, k int) ([][]lookup.Candidate, error) {
			return model.BulkLookupCtx(ctx, queries, k, opts.Parallelism)
		}
		s.co = NewCoalescer(bulk, opts.MaxBatch, opts.Window).WithBulkCtx(bulkCtx)
		s.co.Observe(reg)
	}
	return s, nil
}

// Model returns the model lookups are answered with (the sharded sibling
// when sharding is enabled).
func (s *Serve) Model() *core.EmbLookup { return s.model }

// Lookup answers one query: cache first, then the coalesced batch path.
// Results are bit-identical to model.Lookup(q, k); cached slices are shared
// across callers and must be treated as read-only.
func (s *Serve) Lookup(q string, k int) []lookup.Candidate {
	return s.LookupTrace(nil, q, k)
}

// LookupTrace is Lookup with the request's trace threaded through: the
// normalize and cache stages span here, and a traced miss takes the direct
// model path (core stage spans land on this trace) instead of the
// coalescer, whose batches interleave many requests and would attribute
// other callers' work to this timeline. Results stay bit-identical either
// way. A nil trace makes this exactly Lookup.
func (s *Serve) LookupTrace(tr *obs.Trace, q string, k int) []lookup.Candidate {
	if k <= 0 {
		return nil
	}
	t0 := time.Now()
	sp := tr.Start("normalize")
	norm := core.NormalizeMention(q)
	sp.End()
	s.stageNormalize.Since(t0)
	if s.cache != nil {
		sp = tr.Start("cache")
		res, ok := s.cache.Get(norm, k)
		sp.End()
		if ok {
			s.latency.Since(t0)
			return res
		}
	}
	var res []lookup.Candidate
	switch {
	case tr != nil:
		res = s.model.LookupTrace(tr, norm, k)
	case s.co != nil:
		res = s.co.Lookup(norm, k)
	default:
		res = s.model.Lookup(norm, k)
	}
	if s.cache != nil {
		s.cache.Put(norm, k, res)
	}
	s.latency.Since(t0)
	return res
}

// LookupCtx is Lookup with a deadline/cancellation context threaded
// through the whole pipeline: a cache hit is served regardless (it is
// already paid for), a miss checks ctx before starting, flushes its
// coalescer batch no later than its deadline, and the scan itself is
// cancelled mid-shard once ctx fires. With a context that can never be
// cancelled this is exactly Lookup. A done context returns ctx.Err().
func (s *Serve) LookupCtx(ctx context.Context, q string, k int) ([]lookup.Candidate, error) {
	if ctx == nil || ctx.Done() == nil {
		return s.Lookup(q, k), nil
	}
	if k <= 0 {
		return nil, nil
	}
	t0 := time.Now()
	norm := core.NormalizeMention(q)
	s.stageNormalize.Since(t0)
	if s.cache != nil {
		if res, ok := s.cache.Get(norm, k); ok {
			s.latency.Since(t0)
			return res, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var res []lookup.Candidate
	var err error
	if s.co != nil {
		res, err = s.co.LookupCtx(ctx, norm, k)
	} else {
		res, err = s.model.LookupCtx(ctx, norm, k)
	}
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.Put(norm, k, res)
	}
	s.latency.Since(t0)
	return res, nil
}

// BulkLookup answers an explicit batch: repeated mentions collapse onto one
// computation, cache hits are served directly, and only the distinct misses
// reach the model (hand-batched, bypassing the coalescer — the batch is
// already formed). Results align with the query order and are bit-identical
// to per-query model.Lookup calls.
func (s *Serve) BulkLookup(queries []string, k int) [][]lookup.Candidate {
	out := make([][]lookup.Candidate, len(queries))
	if len(queries) == 0 || k <= 0 {
		return out
	}
	norms := make([]string, len(queries))
	hit := make([]bool, len(queries))
	missIdx := make(map[string]int) // normalized mention -> index into misses
	var misses []string
	for i, q := range queries {
		norms[i] = core.NormalizeMention(q)
		if s.cache != nil {
			if res, ok := s.cache.Get(norms[i], k); ok {
				out[i], hit[i] = res, true
				continue
			}
		}
		if _, ok := missIdx[norms[i]]; !ok {
			missIdx[norms[i]] = len(misses)
			misses = append(misses, norms[i])
		}
	}
	if len(misses) == 0 {
		return out
	}
	results := s.model.BulkLookup(misses, k, s.opts.Parallelism)
	for j, m := range misses {
		if s.cache != nil {
			s.cache.Put(m, k, results[j])
		}
	}
	for i := range queries {
		if !hit[i] {
			out[i] = results[missIdx[norms[i]]]
		}
	}
	return out
}

// BulkLookupCtx is BulkLookup under the caller's context: cache hits are
// served regardless, and the one model call for the distinct misses runs
// cancellably. A context that can never be cancelled takes the exact
// BulkLookup path.
func (s *Serve) BulkLookupCtx(ctx context.Context, queries []string, k int) ([][]lookup.Candidate, error) {
	if ctx == nil || ctx.Done() == nil {
		return s.BulkLookup(queries, k), nil
	}
	out := make([][]lookup.Candidate, len(queries))
	if len(queries) == 0 || k <= 0 {
		return out, nil
	}
	norms := make([]string, len(queries))
	hit := make([]bool, len(queries))
	missIdx := make(map[string]int)
	var misses []string
	for i, q := range queries {
		norms[i] = core.NormalizeMention(q)
		if s.cache != nil {
			if res, ok := s.cache.Get(norms[i], k); ok {
				out[i], hit[i] = res, true
				continue
			}
		}
		if _, ok := missIdx[norms[i]]; !ok {
			missIdx[norms[i]] = len(misses)
			misses = append(misses, norms[i])
		}
	}
	if len(misses) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results, err := s.model.BulkLookupCtx(ctx, misses, k, s.opts.Parallelism)
	if err != nil {
		return nil, err
	}
	for j, m := range misses {
		if s.cache != nil {
			s.cache.Put(m, k, results[j])
		}
	}
	for i := range queries {
		if !hit[i] {
			out[i] = results[missIdx[norms[i]]]
		}
	}
	return out, nil
}

// Stats is the serving substrate's observability snapshot, exposed by the
// HTTP server's /stats endpoint.
type Stats struct {
	Shards    int                 `json:"shards"`
	Cache     *CacheStats         `json:"cache,omitempty"`
	Coalescer *CoalescerStats     `json:"coalescer,omitempty"`
	Latency   *obs.LatencySummary `json:"latency,omitempty"`
}

// Stats snapshots cache and coalescer counters plus the serve-latency
// quantiles.
func (s *Serve) Stats() Stats {
	st := Stats{Shards: s.opts.Shards}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	if s.co != nil {
		co := s.co.Stats()
		st.Coalescer = &co
	}
	if sum := s.latency.Summary(); sum.Count > 0 {
		st.Latency = &sum
	}
	return st
}

// Close flushes the coalescer. The Serve remains usable; subsequent
// lookups bypass batching.
func (s *Serve) Close() {
	if s.co != nil {
		s.co.Close()
	}
}
