// Package serve is the throughput substrate between the HTTP layer and
// core.EmbLookup — the deployment shape of embedding-as-a-service systems
// like KGvec2go and Wembedder, where one shared entity index answers heavy
// concurrent traffic of small lookups. Three cooperating pieces raise
// throughput without changing any result:
//
//   - sharded scans (index.Sharded via core.WithShardedIndex): one query
//     fans its index scan across S row shards and merges per-shard top-k
//     heaps; batches sweep shard-major for locality
//   - query coalescing (Coalescer): concurrent Lookup calls collect into a
//     micro-batch dispatched as one BulkLookup, amortizing ADC-table
//     construction and scratch checkout across callers
//   - a sharded mention cache (MentionCache): table-annotation traffic
//     repeats the same cell strings constantly, so results are cached under
//     the embedding-invariant key core.NormalizeMention(q)
//
// Every path returns bit-identical candidates to a direct
// core.EmbLookup.Lookup call (see DESIGN.md §7).
package serve

import (
	"time"

	"emblookup/internal/core"
	"emblookup/internal/lookup"
)

// Options configures the serving substrate. The zero value enables every
// piece at defaults; use the negative sentinels to disable pieces.
type Options struct {
	// Shards is the index shard count: 0 picks a default (4), 1 keeps the
	// index unsharded.
	Shards int
	// MaxBatch flushes a coalescer batch at this many queries (0 = 32;
	// negative disables coalescing entirely — every Lookup goes solo).
	MaxBatch int
	// Window flushes a non-full coalescer batch this long after its first
	// query arrived (0 = 200µs).
	Window time.Duration
	// CacheSize is the mention cache capacity in entries (0 = 4096;
	// negative disables the cache).
	CacheSize int
	// Parallelism bounds worker fan-out for scans and batches
	// (≤0 = GOMAXPROCS).
	Parallelism int
}

// Serve answers lookups through the cache, the coalescer, and the sharded
// index. Safe for concurrent use.
type Serve struct {
	model *core.EmbLookup
	cache *MentionCache
	co    *Coalescer
	opts  Options
}

// New builds the serving substrate over a trained model. With
// opts.Shards > 1 the model's index is wrapped for sharded scans (the model
// itself is shared, not retrained); PQ and Flat indexes support this, IVF
// refuses and should be served with Shards = 1.
func New(model *core.EmbLookup, opts Options) (*Serve, error) {
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.Shards > 1 {
		sharded, err := model.WithShardedIndex(opts.Shards, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		model = sharded
	}
	s := &Serve{model: model, opts: opts}
	if opts.CacheSize > 0 {
		s.cache = NewMentionCache(opts.CacheSize)
	}
	if opts.MaxBatch >= 0 {
		bulk := func(queries []string, k int) [][]lookup.Candidate {
			return model.BulkLookup(queries, k, opts.Parallelism)
		}
		s.co = NewCoalescer(bulk, opts.MaxBatch, opts.Window)
	}
	return s, nil
}

// Model returns the model lookups are answered with (the sharded sibling
// when sharding is enabled).
func (s *Serve) Model() *core.EmbLookup { return s.model }

// Lookup answers one query: cache first, then the coalesced batch path.
// Results are bit-identical to model.Lookup(q, k); cached slices are shared
// across callers and must be treated as read-only.
func (s *Serve) Lookup(q string, k int) []lookup.Candidate {
	if k <= 0 {
		return nil
	}
	norm := core.NormalizeMention(q)
	if s.cache != nil {
		if res, ok := s.cache.Get(norm, k); ok {
			return res
		}
	}
	var res []lookup.Candidate
	if s.co != nil {
		res = s.co.Lookup(norm, k)
	} else {
		res = s.model.Lookup(norm, k)
	}
	if s.cache != nil {
		s.cache.Put(norm, k, res)
	}
	return res
}

// BulkLookup answers an explicit batch: repeated mentions collapse onto one
// computation, cache hits are served directly, and only the distinct misses
// reach the model (hand-batched, bypassing the coalescer — the batch is
// already formed). Results align with the query order and are bit-identical
// to per-query model.Lookup calls.
func (s *Serve) BulkLookup(queries []string, k int) [][]lookup.Candidate {
	out := make([][]lookup.Candidate, len(queries))
	if len(queries) == 0 || k <= 0 {
		return out
	}
	norms := make([]string, len(queries))
	hit := make([]bool, len(queries))
	missIdx := make(map[string]int) // normalized mention -> index into misses
	var misses []string
	for i, q := range queries {
		norms[i] = core.NormalizeMention(q)
		if s.cache != nil {
			if res, ok := s.cache.Get(norms[i], k); ok {
				out[i], hit[i] = res, true
				continue
			}
		}
		if _, ok := missIdx[norms[i]]; !ok {
			missIdx[norms[i]] = len(misses)
			misses = append(misses, norms[i])
		}
	}
	if len(misses) == 0 {
		return out
	}
	results := s.model.BulkLookup(misses, k, s.opts.Parallelism)
	for j, m := range misses {
		if s.cache != nil {
			s.cache.Put(m, k, results[j])
		}
	}
	for i := range queries {
		if !hit[i] {
			out[i] = results[missIdx[norms[i]]]
		}
	}
	return out
}

// Stats is the serving substrate's observability snapshot, exposed by the
// HTTP server's /stats endpoint.
type Stats struct {
	Shards    int             `json:"shards"`
	Cache     *CacheStats     `json:"cache,omitempty"`
	Coalescer *CoalescerStats `json:"coalescer,omitempty"`
}

// Stats snapshots cache and coalescer counters.
func (s *Serve) Stats() Stats {
	st := Stats{Shards: s.opts.Shards}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	if s.co != nil {
		co := s.co.Stats()
		st.Coalescer = &co
	}
	return st
}

// Close flushes the coalescer. The Serve remains usable; subsequent
// lookups bypass batching.
func (s *Serve) Close() {
	if s.co != nil {
		s.co.Close()
	}
}
