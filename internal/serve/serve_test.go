package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
)

var (
	modelOnce sync.Once
	tGraph    *kg.Graph
	tModel    *core.EmbLookup
	tErr      error
)

// testModel trains one small model shared by every test in the package.
func testModel(t *testing.T) (*kg.Graph, *core.EmbLookup) {
	t.Helper()
	modelOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			tErr = err
			return
		}
		tGraph, tModel = g, m
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tGraph, tModel
}

func sameCandidates(t *testing.T, ctx string, want, got []lookup.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d candidates", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: candidate %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

func TestMentionCacheBasics(t *testing.T) {
	c := NewMentionCache(4)
	val := []lookup.Candidate{{ID: 1, Score: -2}}
	if _, ok := c.Get("a", 5); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 5, val)
	got, ok := c.Get("a", 5)
	if !ok {
		t.Fatal("miss after put")
	}
	sameCandidates(t, "cache value", val, got)
	// Different k is a different entry.
	if _, ok := c.Get("a", 6); ok {
		t.Fatal("k must be part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMentionCacheEviction(t *testing.T) {
	c := NewMentionCache(1) // single shard, capacity 1
	c.Put("a", 1, nil)
	c.Put("b", 1, nil)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("LRU entry should have been evicted")
	}
	if _, ok := c.Get("b", 1); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestMentionCacheLRUOrder(t *testing.T) {
	// Force a single segment of capacity 3 so LRU order is observable:
	// after touching "a", inserting a fourth entry must evict "b".
	c := NewMentionCache(1)
	c.shards[0].capacity = 3
	for _, m := range []string{"a", "b", "c"} {
		c.Put(m, 1, []lookup.Candidate{{ID: kg.EntityID(len(m))}})
	}
	c.Get("a", 1) // promote the oldest
	c.Put("d", 1, nil)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("b should have been the LRU victim")
	}
	for _, m := range []string{"a", "c", "d"} {
		if _, ok := c.Get(m, 1); !ok {
			t.Fatalf("%q evicted unexpectedly", m)
		}
	}
}

func TestCoalescerMatchesSolo(t *testing.T) {
	var mu sync.Mutex
	batchSizes := []int{}
	bulk := func(queries []string, k int) [][]lookup.Candidate {
		mu.Lock()
		batchSizes = append(batchSizes, len(queries))
		mu.Unlock()
		out := make([][]lookup.Candidate, len(queries))
		for i, q := range queries {
			out[i] = []lookup.Candidate{{ID: kg.EntityID(len(q)), Score: float64(k)}}
		}
		return out
	}
	co := NewCoalescer(bulk, 8, time.Millisecond)
	var wg sync.WaitGroup
	results := make([][]lookup.Candidate, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("query-%0*d", i%5, i)
			results[i] = co.Lookup(q, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 64; i++ {
		q := fmt.Sprintf("query-%0*d", i%5, i)
		want := []lookup.Candidate{{ID: kg.EntityID(len(q)), Score: 3}}
		sameCandidates(t, "coalesced lookup", want, results[i])
	}
	st := co.Stats()
	if st.Queries != 64 {
		t.Fatalf("dispatched %d queries", st.Queries)
	}
	if st.Batches == 0 || st.Batches > 64 {
		t.Fatalf("batches = %d", st.Batches)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range batchSizes {
		if n > 8 {
			t.Fatalf("batch of %d exceeds MaxBatch", n)
		}
	}
}

func TestCoalescerMixedK(t *testing.T) {
	bulk := func(queries []string, k int) [][]lookup.Candidate {
		out := make([][]lookup.Candidate, len(queries))
		for i := range queries {
			out[i] = []lookup.Candidate{{ID: kg.EntityID(k)}}
		}
		return out
	}
	co := NewCoalescer(bulk, 16, 500*time.Microsecond)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 1 + i%3
			res := co.Lookup("q", k)
			if len(res) != 1 || res[0].ID != kg.EntityID(k) {
				t.Errorf("k=%d got %+v", k, res)
			}
		}(i)
	}
	wg.Wait()
}

func TestCoalescerWindowFlush(t *testing.T) {
	bulk := func(queries []string, k int) [][]lookup.Candidate {
		out := make([][]lookup.Candidate, len(queries))
		for i := range queries {
			out[i] = nil
		}
		return out
	}
	co := NewCoalescer(bulk, 1<<20, 200*time.Microsecond)
	done := make(chan struct{})
	go func() {
		co.Lookup("solo", 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("window flush never fired for a lone query")
	}
}

func TestCoalescerClose(t *testing.T) {
	bulk := func(queries []string, k int) [][]lookup.Candidate {
		return make([][]lookup.Candidate, len(queries))
	}
	co := NewCoalescer(bulk, 4, time.Hour) // window never fires on its own
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // under MaxBatch: waits on the window
		wg.Add(1)
		go func() { defer wg.Done(); co.Lookup("q", 1) }()
	}
	time.Sleep(50 * time.Millisecond)
	co.Close()
	wg.Wait()
	// After Close, lookups still answer (solo path).
	if res := co.Lookup("after", 1); res != nil {
		t.Fatalf("post-close lookup = %+v", res)
	}
}

// TestServeMatchesDirect is the package's core guarantee: every serving
// path — sharded index, coalesced lookups, cache-cold and cache-warm —
// returns bit-identical candidates to direct model.Lookup calls.
func TestServeMatchesDirect(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 3, MaxBatch: 4, Window: 200 * time.Microsecond, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	queries := []string{
		g.Entities[0].Label,
		g.Entities[1].Label,
		"no such entity anywhere",
		g.Entities[0].Label, // repeat: exercises the cache
	}
	for round := 0; round < 2; round++ { // round 1 is fully cache-warm
		for _, q := range queries {
			want := m.Lookup(q, 5)
			got := sv.Lookup(q, 5)
			sameCandidates(t, fmt.Sprintf("serve round %d %q", round, q), want, got)
		}
	}
	st := sv.Stats()
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("expected cache hits, stats = %+v", st)
	}
	if st.Shards != 3 {
		t.Fatalf("shards = %d", st.Shards)
	}
}

func TestServeBulkDedupesMentions(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 2, MaxBatch: -1, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Entities[2].Label, g.Entities[3].Label
	queries := []string{a, b, a, a, b}
	got := sv.BulkLookup(queries, 4)
	for i, q := range queries {
		sameCandidates(t, fmt.Sprintf("bulk query %d", i), m.Lookup(q, 4), got[i])
	}
	// 5 queries, 2 distinct mentions: all probes missed (cold), but only 2
	// lookups ran; the in-batch duplicates never became cache misses twice.
	st := sv.Stats()
	if st.Cache.Misses != 5 || st.Cache.Entries != 2 {
		t.Fatalf("cache stats = %+v", *st.Cache)
	}
	// Second pass: all hits.
	sv.BulkLookup(queries, 4)
	if st := sv.Stats(); st.Cache.Hits != 5 {
		t.Fatalf("warm pass hits = %d", st.Cache.Hits)
	}
}

func TestServeCaseNormalization(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 1, MaxBatch: -1, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := g.Entities[4].Label
	upper := ""
	for _, r := range q {
		if 'a' <= r && r <= 'z' {
			r -= 'a' - 'A'
		}
		upper += string(r)
	}
	want := sv.Lookup(q, 3)
	got := sv.Lookup(upper, 3) // must hit the cache under the normalized key
	sameCandidates(t, "case-normalized lookup", want, got)
	if st := sv.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("expected a cache hit across case variants, stats = %+v", *st.Cache)
	}
	// And the normalized result must equal the direct lookup of the
	// uppercase form (embedding invariance, not just cache aliasing).
	sameCandidates(t, "embedding case invariance", m.Lookup(upper, 3), want)
}

func TestServeConcurrent(t *testing.T) {
	g, m := testModel(t)
	sv, err := New(m, Options{Shards: 2, MaxBatch: 4, Window: 100 * time.Microsecond, CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	queries := make([]string, 8)
	want := make([][]lookup.Candidate, len(queries))
	for i := range queries {
		queries[i] = g.Entities[i].Label
		want[i] = m.Lookup(queries[i], 5)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (w + i) % len(queries)
				got := sv.Lookup(queries[qi], 5)
				for j := range want[qi] {
					if got[j] != want[qi][j] {
						t.Errorf("worker %d query %d diverged", w, qi)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServeFastScan runs the full serving stack (shards, coalescer, cache)
// over a fast-scan model and checks bit-identity with direct lookups.
func TestServeFastScan(t *testing.T) {
	g, m := testModel(t)
	fs, err := m.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := New(fs, Options{Shards: 3, MaxBatch: 4, Window: 200 * time.Microsecond, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	queries := []string{
		g.Entities[0].Label,
		g.Entities[5].Label,
		"no such entity anywhere",
		g.Entities[0].Label,
	}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			want := fs.Lookup(q, 5)
			got := sv.Lookup(q, 5)
			sameCandidates(t, fmt.Sprintf("fastscan serve round %d %q", round, q), want, got)
		}
	}
}
