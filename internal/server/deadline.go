package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the caller's remaining budget in milliseconds —
// the cross-service deadline-propagation header (the ?deadline_ms= query
// parameter is the curl-friendly equivalent and wins when both appear).
const DeadlineHeader = "X-Emblookup-Deadline-Ms"

// RequestDeadline extracts the caller's deadline budget from the request.
// Returns (0, false, nil) when no deadline was asked for; a malformed
// value is an error the handler should turn into a 400.
func RequestDeadline(r *http.Request) (time.Duration, bool, error) {
	s := r.URL.Query().Get("deadline_ms")
	if s == "" {
		s = r.Header.Get(DeadlineHeader)
	}
	if s == "" {
		return 0, false, nil
	}
	ms, err := strconv.Atoi(s)
	if err != nil || ms <= 0 {
		return 0, false, fmt.Errorf(`"deadline_ms" must be a positive integer of milliseconds`)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}
