package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBulkBodyLimit checks that /bulk rejects oversized bodies with 413
// instead of truncating them.
func TestBulkBodyLimit(t *testing.T) {
	g, m := testModel(t)
	s := New(g, m)
	s.MaxBulkBytes = 64
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := strings.Repeat("a", 65) + "\n"
	resp, err := ts.Client().Post(ts.URL+"/bulk", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 413 {
		t.Fatalf("oversized bulk body: status %d, want 413", resp.StatusCode)
	}

	// A body under the limit still works.
	resp, err = ts.Client().Post(ts.URL+"/bulk?k=1", "text/plain", strings.NewReader(g.Entities[0].Label+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("in-bounds bulk body: status %d", resp.StatusCode)
	}
}

// TestBulkQueryCountLimit checks that too many queries is a 400, never a
// silent truncation.
func TestBulkQueryCountLimit(t *testing.T) {
	g, m := testModel(t)
	s := New(g, m)
	s.MaxBulkQueries = 3
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := ""
	for i := 0; i < 4; i++ {
		body += g.Entities[i].Label + "\n"
	}
	resp, err := ts.Client().Post(ts.URL+"/bulk", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("over-count bulk: status %d, want 400", resp.StatusCode)
	}
}

func TestReadQueryLines(t *testing.T) {
	qs, err := ReadQueryLines(strings.NewReader("a\n\nb\nc\n"), 10)
	if err != nil || len(qs) != 3 {
		t.Fatalf("qs=%v err=%v", qs, err)
	}
	if _, err := ReadQueryLines(strings.NewReader("a\nb\nc\n"), 2); err == nil {
		t.Fatal("over-limit line count should fail")
	}
}

// TestPartitionEndpointGating checks that /partition/search exists only on
// servers built as cluster nodes, that hits come back in global row
// coordinates, and that /stats carries the partition metadata.
func TestPartitionEndpointGating(t *testing.T) {
	g, m := testModel(t)

	plain := httptest.NewServer(New(g, m).Handler())
	defer plain.Close()
	resp, err := plain.Client().Post(plain.URL+"/partition/search", "application/json", strings.NewReader(`{"k":1,"queries":[[0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("partition endpoint exposed without WithPartition")
	}

	// A node serving rows [lo, hi) must report global row ids ≥ lo.
	const lo, hi = 5, 25
	pm, err := m.WithPartition(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	info := PartitionInfo{ID: 1, Count: 3, RowLo: lo, RowHi: hi}
	node := httptest.NewServer(New(g, pm, WithPartition(info)).Handler())
	defer node.Close()

	emb := m.Embed(g.Entities[0].Label)
	body, _ := json.Marshal(PartitionSearchRequest{K: 3, Queries: [][]float32{emb}})
	resp, err = node.Client().Post(node.URL+"/partition/search", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("partition search status %d", resp.StatusCode)
	}
	var psr PartitionSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&psr); err != nil {
		t.Fatal(err)
	}
	if psr.Partition != info {
		t.Fatalf("partition metadata = %+v", psr.Partition)
	}
	if len(psr.Results) != 1 || len(psr.Results[0]) == 0 {
		t.Fatalf("results = %+v", psr.Results)
	}
	for _, h := range psr.Results[0] {
		if h.Row < lo || h.Row >= hi {
			t.Fatalf("hit row %d outside global range [%d, %d)", h.Row, lo, hi)
		}
	}

	st, err := node.Client().Get(node.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(st.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Partition == nil || *sr.Partition != info {
		t.Fatalf("stats partition = %+v", sr.Partition)
	}
}

// TestPartitionBodyLimit checks the partition endpoint's own 413 bound.
func TestPartitionBodyLimit(t *testing.T) {
	g, m := testModel(t)
	pm, err := m.WithPartition(0, m.Index().Len())
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, pm, WithPartition(PartitionInfo{Count: 1, RowHi: m.Index().Len()}))
	s.MaxPartitionBytes = 32
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"k":1,"queries":[[%s]]}`, strings.Repeat("0.123,", 63)+"0.123")
	resp, err := ts.Client().Post(ts.URL+"/partition/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 413 {
		t.Fatalf("oversized partition body: status %d, want 413", resp.StatusCode)
	}
}
