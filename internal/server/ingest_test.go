package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestIngestEndpoint drives the streaming-ingest loop over HTTP: a new
// entity posted to /ingest?flush=1 is immediately the top /lookup hit, and
// /stats grows an ingest section.
func TestIngestEndpoint(t *testing.T) {
	g, m := testModel(t)
	dyn := m.WithDynamicIndex(1 << 30)
	in, err := dyn.NewIngestor(8)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	s := New(g, dyn, WithIngest(in))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const label = "zanzibar quantum relay"
	resp, err := ts.Client().Post(ts.URL+"/ingest?flush=1", "application/json",
		strings.NewReader(fmt.Sprintf(`{"newEntity":true,"label":%q}`, label)))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Enqueued != 1 || ir.Stats == nil || ir.Stats.Applied < 1 {
		t.Fatalf("flush ingest: status %d, resp %+v", resp.StatusCode, ir)
	}

	lr, err := ts.Client().Get(ts.URL + "/lookup?q=" + strings.ReplaceAll(label, " ", "+") + "&k=1")
	if err != nil {
		t.Fatal(err)
	}
	var look LookupResponse
	if err := json.NewDecoder(lr.Body).Decode(&look); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(look.Results) == 0 || look.Results[0].Label != label {
		t.Fatalf("ingested entity not served: %+v", look.Results)
	}

	// A JSON array enqueues asynchronously with a 202.
	target := g.Entities[2].ID
	resp, err = ts.Client().Post(ts.URL+"/ingest", "application/json",
		strings.NewReader(fmt.Sprintf(`[{"mention":"relay alias one","id":%d},{"mention":"relay alias two","id":%d}]`, target, target)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("array ingest status = %d, want 202", resp.StatusCode)
	}
	in.Flush()

	st, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if stats.Ingest == nil || stats.Ingest.Applied < 3 {
		t.Fatalf("stats ingest section = %+v, want ≥3 applied", stats.Ingest)
	}

	// Garbage body is a 400, not a crash.
	resp, err = ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
}

// TestIngestEndpointGating: without WithIngest the route does not exist.
func TestIngestEndpointGating(t *testing.T) {
	_, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest on plain server status = %d, want 404", resp.StatusCode)
	}
}

// TestIngestConcurrentWithHTTPLookups posts ingest batches while reader
// goroutines hit /lookup — under `go test -race` this pins the server-side
// graph read-locking during live ingest.
func TestIngestConcurrentWithHTTPLookups(t *testing.T) {
	g, m := testModel(t)
	dyn := m.WithDynamicIndex(1 << 30)
	in, err := dyn.NewIngestor(16)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	s := New(g, dyn, WithIngest(in))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/lookup?q=garnak+relay&k=3")
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 16; i++ {
		resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json",
			strings.NewReader(fmt.Sprintf(`{"newEntity":true,"label":"garnak station %02d"}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	in.Flush()
	close(stop)
	wg.Wait()
	if st := in.Stats(); st.Applied != 16 || st.Failed != 0 {
		t.Fatalf("ingest stats = %+v, want 16 applied", st)
	}
}
