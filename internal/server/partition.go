package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"emblookup/internal/index"
	"emblookup/internal/obs"
)

// PartitionInfo describes the slice of a global entity index this node
// serves in a partitioned cluster: partition ID out of Count, covering
// global index rows [RowLo, RowHi). The router uses it (via /stats) to
// sanity-check that a node set covers the full index, and the node uses
// RowLo to report global row ids from its partition-scoped search.
type PartitionInfo struct {
	ID    int `json:"id"`
	Count int `json:"count"`
	RowLo int `json:"rowLo"`
	RowHi int `json:"rowHi"`
}

// WithPartition marks the server as one node of a partitioned cluster:
// /stats reports the partition metadata and POST /partition/search is
// mounted — the partition-scoped bulk endpoint the scatter-gather router
// fans out to (already-embedded queries in, raw per-partition top-k out).
func WithPartition(info PartitionInfo) Option {
	return func(s *Server) { s.partition = &info }
}

// PartitionSearchRequest is the body of POST /partition/search: queries
// already embedded by the router (embedding happens once, at the router),
// and the per-query candidate budget k.
type PartitionSearchRequest struct {
	K       int         `json:"k"`
	Queries [][]float32 `json:"queries"`
}

// PartitionHit is one raw index hit of a partition-scoped search: the
// global row id (node-local id plus the partition's RowLo offset), the
// exact float32 distance, and the entity the row maps to. Hits are not
// deduplicated — the router merges all partitions under the canonical
// (Dist, Row) order first, then dedupes, which is what keeps a P-node
// cluster bit-identical to the single-process search (DESIGN.md §9).
type PartitionHit struct {
	Row    int32   `json:"row"`
	Dist   float32 `json:"dist"`
	Entity int32   `json:"entity"`
}

// PartitionSearchResponse is the /partition/search reply; Results aligns
// with the request's query order. When the router propagated a trace id
// (X-Emblookup-Trace), the node echoes it with its own spans, which the
// router grafts under this hop's leg — one timeline across the cluster.
type PartitionSearchResponse struct {
	Partition PartitionInfo    `json:"partition"`
	Results   [][]PartitionHit `json:"results"`
	TraceID   string           `json:"traceId,omitempty"`
	Spans     []obs.SpanRecord `json:"spans,omitempty"`
}

// handlePartitionSearch answers a router's scatter: validate strictly (400
// on any bound violation rather than silently clamping), run the batch over
// this node's index slice, and translate row ids into the global space.
func (s *Server) handlePartitionSearch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxPartitionBytes)
	var req PartitionSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.MaxPartitionBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The router over-fetches dedupe headroom (up to 3k when alias rows are
	// indexed), so the partition budget is bounded at 3×MaxK.
	if req.K <= 0 || req.K > 3*s.MaxK {
		http.Error(w, fmt.Sprintf("\"k\" must be in 1..%d", 3*s.MaxK), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "no queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.MaxBulkQueries {
		http.Error(w, fmt.Sprintf("query count %d exceeds limit %d", len(req.Queries), s.MaxBulkQueries), http.StatusBadRequest)
		return
	}
	dim := s.model.Index().Dim()
	for i, q := range req.Queries {
		if len(q) != dim {
			http.Error(w, fmt.Sprintf("query %d has dim %d, index dim is %d", i, len(q), dim), http.StatusBadRequest)
			return
		}
	}

	// Adopt the router's trace id so this node's spans join its timeline.
	var tr *obs.Trace
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		tr = obs.NewTraceWith(id)
	}
	start := time.Now()
	sp := tr.Start("search")
	res := index.BatchSearch(s.model.Index(), req.Queries, req.K, 0)
	sp.End()
	sp = tr.Start("translate")
	resp := PartitionSearchResponse{Partition: *s.partition}
	resp.Results = make([][]PartitionHit, len(res))
	lo := int32(s.partition.RowLo)
	for i, rs := range res {
		hits := make([]PartitionHit, len(rs))
		for j, h := range rs {
			// RowEntity (not the trained row table) so rows appended live
			// through routed ingest translate too.
			hits[j] = PartitionHit{Row: lo + h.ID, Dist: h.Dist, Entity: int32(s.model.RowEntity(h.ID))}
		}
		resp.Results[i] = hits
	}
	sp.End()
	took := time.Since(start)
	s.httpPartition.Observe(took)
	if s.slowLog.Slow(took) {
		s.slowLog.Record(obs.SlowEntry{
			Route: "/partition/search", Query: fmt.Sprintf("[%d queries]", len(req.Queries)),
			K: req.K, DurUs: took.Microseconds(), TraceID: tr.ID(), Spans: tr.Spans(),
		})
	}
	resp.TraceID = tr.ID()
	resp.Spans = tr.Spans()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
