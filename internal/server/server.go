// Package server exposes a trained EmbLookup model over HTTP — the
// deployment shape the paper positions EmbLookup for: a transparent,
// local, rate-limit-free replacement for remote lookup endpoints.
//
//	GET /lookup?q=<query>&k=<n>   → JSON candidate list
//	GET /bulk  (POST body: one query per line) → NDJSON results
//	GET /stats                    → index, graph, and serving statistics
//	GET /healthz                  → 200 + JSON liveness report: partition
//	                                assignment, cluster-map epoch, applied
//	                                ingest count — enough for a router probe
//	                                to detect a stale assignment, not just a
//	                                dead process
//	POST /partition/search        → partition-scoped batch search (only
//	                                with WithPartition — see internal/cluster)
//	GET /debug/pprof/...          → profiling (only with WithPprof)
//
// Handlers call the model's concurrency-safe entry points directly:
// Lookup and BulkLookup pool their working memory per worker (see
// DESIGN.md "Memory discipline"), so concurrent requests contend only on
// the scratch pool, not on per-request allocation. With WithServe the
// request path additionally flows through internal/serve — the sharded
// mention cache, the query coalescer, and sharded index scans — returning
// bit-identical results at higher concurrent throughput (DESIGN.md §7).
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/obs"
	"emblookup/internal/serve"
)

// Server routes lookup requests to a model. Create with New and mount via
// Handler.
type Server struct {
	graph     *kg.Graph
	model     *core.EmbLookup
	serve     *serve.Serve
	pprof     bool
	partition *PartitionInfo
	ingest    *core.Ingestor
	// epoch is the cluster-map version this node last heard from the
	// control plane; /healthz reports it so probes can tell a live node
	// with a stale view from a healthy one.
	epoch atomic.Int64

	reg          *obs.Registry
	mountMetrics bool
	slowLog      *obs.SlowLog
	// Per-route latency histograms, resolved once at construction.
	httpLookup    *obs.Histogram
	httpBulk      *obs.Histogram
	httpPartition *obs.Histogram
	// MaxK bounds the per-request candidate budget.
	MaxK int
	// MaxBulkQueries bounds how many queries one /bulk or
	// /partition/search request may carry; more is a 400, never a silent
	// truncation.
	MaxBulkQueries int
	// MaxBulkBytes bounds the /bulk request body; larger bodies are a 413.
	MaxBulkBytes int64
	// MaxPartitionBytes bounds the /partition/search body (embeddings are
	// bulkier than query strings).
	MaxPartitionBytes int64
}

// Option configures a Server at construction.
type Option func(*Server)

// WithServe routes /lookup and /bulk through the serving substrate (mention
// cache + query coalescer + sharded scans) instead of calling the model
// directly, and adds its counters to /stats.
func WithServe(sv *serve.Serve) Option {
	return func(s *Server) { s.serve = sv }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — off by default so a
// plain deployment exposes no profiling surface.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithMetrics directs the server's metrics into reg (nil keeps the
// process-wide obs.Default()) and mounts GET /metrics serving it in
// Prometheus text format.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
		s.mountMetrics = true
	}
}

// WithSlowLog records requests crossing the log's threshold — with their
// trace spans, so a slow entry shows which stage dragged — and mounts
// GET /debug/slowlog.
func WithSlowLog(sl *obs.SlowLog) Option {
	return func(s *Server) { s.slowLog = sl }
}

// WithIngest mounts POST /ingest backed by in (streaming entity/alias
// ingest, DESIGN.md §13) and adds an ingest section to /stats. The graph
// now grows under live traffic, so every handler resolving entity IDs takes
// the ingestor's read lock around graph accesses.
func WithIngest(in *core.Ingestor) Option {
	return func(s *Server) { s.ingest = in }
}

// SetEpoch records the cluster-map epoch the control plane last pushed to
// this node; /healthz reports it. Safe to call concurrently with serving.
func (s *Server) SetEpoch(e int64) { s.epoch.Store(e) }

// Epoch returns the last recorded cluster-map epoch (0 when standalone).
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// New builds a server over a trained model.
func New(g *kg.Graph, model *core.EmbLookup, opts ...Option) *Server {
	s := &Server{
		graph:             g,
		model:             model,
		MaxK:              1000,
		MaxBulkQueries:    4096,
		MaxBulkBytes:      1 << 20,
		MaxPartitionBytes: 64 << 20,
	}
	s.reg = obs.Default()
	for _, o := range opts {
		o(s)
	}
	s.httpLookup = s.reg.Histogram(obs.Labels("emblookup_http_request_seconds", "route", "/lookup"))
	s.httpBulk = s.reg.Histogram(obs.Labels("emblookup_http_request_seconds", "route", "/bulk"))
	s.httpPartition = s.reg.Histogram(obs.Labels("emblookup_http_request_seconds", "route", "/partition/search"))
	return s
}

// NewHTTPServer wraps h in an http.Server with the listener timeouts a
// production deployment needs: slow-loris header reads, stalled request
// bodies, and wedged response writes all get bounded instead of pinning a
// connection forever. Every CLI serving mode (serve, cluster-node,
// cluster-route) listens through this.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /lookup", s.handleLookup)
	mux.HandleFunc("POST /bulk", s.handleBulk)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.partition != nil {
		mux.HandleFunc("POST /partition/search", s.handlePartitionSearch)
	}
	if s.ingest != nil {
		mux.HandleFunc("POST /ingest", s.handleIngest)
	}
	if s.mountMetrics {
		mux.Handle("GET /metrics", s.reg.Handler())
	}
	if s.slowLog != nil {
		mux.Handle("GET /debug/slowlog", s.slowLog.Handler())
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// HealthzResponse is the GET /healthz reply. Beyond liveness it carries
// what a cluster probe needs to detect a *stale* node: the partition range
// this process actually serves, the cluster-map epoch it last heard, and
// how many ingest deltas it has applied. A router readmitting a node checks
// these against its own view instead of trusting any 200.
type HealthzResponse struct {
	Status        string         `json:"status"`
	Partition     *PartitionInfo `json:"partition,omitempty"`
	Epoch         int64          `json:"epoch,omitempty"`
	IngestApplied int64          `json:"ingestApplied,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthzResponse{Status: "ok", Partition: s.partition, Epoch: s.epoch.Load()}
	if s.ingest != nil {
		resp.IngestApplied = s.ingest.Stats().Applied
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// lookupOne answers one query through the serving substrate when present,
// threading the request's trace (nil for untraced requests).
func (s *Server) lookupOne(tr *obs.Trace, q string, k int) []lookup.Candidate {
	if s.serve != nil {
		return s.serve.LookupTrace(tr, q, k)
	}
	return s.model.LookupTrace(tr, q, k)
}

// lookupBulk answers a query batch through the serving substrate when
// present.
func (s *Server) lookupBulk(queries []string, k int) [][]lookup.Candidate {
	if s.serve != nil {
		return s.serve.BulkLookup(queries, k)
	}
	return s.model.BulkLookup(queries, k, 0)
}

// ReadQueryLines reads one query per line from r, skipping blank lines and
// failing once maxQueries is exceeded — shared by the single-node /bulk
// handler and the cluster router's front-end so both enforce the same
// bound instead of silently truncating.
func ReadQueryLines(r io.Reader, maxQueries int) ([]string, error) {
	var queries []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if q := sc.Text(); q != "" {
			queries = append(queries, q)
		}
		if len(queries) > maxQueries {
			return nil, fmt.Errorf("query count exceeds limit %d", maxQueries)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return queries, nil
}

// Hit is one JSON result row.
type Hit struct {
	ID    int32    `json:"id"`
	Label string   `json:"label"`
	Score float64  `json:"score"`
	Types []string `json:"types,omitempty"`
}

// LookupResponse is the /lookup reply. TraceID and Trace appear when the
// request asked for tracing (?trace=1 or an X-Emblookup-Trace header): the
// per-stage spans of this lookup, cluster hops included.
type LookupResponse struct {
	Query   string           `json:"query"`
	TookUs  int64            `json:"tookUs"`
	Results []Hit            `json:"results"`
	TraceID string           `json:"traceId,omitempty"`
	Trace   []obs.SpanRecord `json:"trace,omitempty"`
}

func (s *Server) parseK(r *http.Request) (int, error) {
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > s.MaxK {
			return 0, fmt.Errorf("\"k\" must be an integer in 1..%d", s.MaxK)
		}
		k = v
	}
	return k, nil
}

// graphRLock/graphRUnlock guard graph reads against live ingest. Without an
// ingestor the graph is immutable and the calls are no-ops.
func (s *Server) graphRLock() {
	if s.ingest != nil {
		s.ingest.RLock()
	}
}

func (s *Server) graphRUnlock() {
	if s.ingest != nil {
		s.ingest.RUnlock()
	}
}

func (s *Server) hits(tr *obs.Trace, q string, k int, hybrid bool) []Hit {
	res := s.lookupOne(tr, q, k)
	if hybrid {
		// Re-rank the embedding top-k by exact string similarity against the
		// entity labels (DESIGN.md §15); the graph lock covers the label reads.
		s.graphRLock()
		res = serve.HybridRerank(q, res, s.graph.Label)
		s.graphRUnlock()
	}
	hits := make([]Hit, len(res))
	s.graphRLock()
	for i, c := range res {
		e := s.graph.Entity(c.ID)
		h := Hit{ID: int32(c.ID), Label: e.Label, Score: c.Score}
		for _, t := range e.Types {
			h.Types = append(h.Types, s.graph.TypeName(t))
		}
		hits[i] = h
	}
	s.graphRUnlock()
	return hits
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
		return
	}
	k, err := s.parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A trace is opened when the caller asked for one (?trace=1), when an
	// upstream hop propagated an id, or when a slow log might need the span
	// breakdown of a laggard.
	wantTrace := r.URL.Query().Get("trace") == "1"
	var tr *obs.Trace
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		tr = obs.NewTraceWith(id)
		wantTrace = true
	} else if wantTrace || s.slowLog != nil {
		tr = obs.NewTrace()
	}
	start := time.Now()
	hits := s.hits(tr, q, k, r.URL.Query().Get("hybrid") == "1")
	took := time.Since(start)
	s.httpLookup.Observe(took)
	if s.slowLog.Slow(took) {
		s.slowLog.Record(obs.SlowEntry{
			Route: "/lookup", Query: q, K: k, DurUs: took.Microseconds(),
			TraceID: tr.ID(), Spans: tr.Spans(),
		})
	}
	resp := LookupResponse{
		Query:   q,
		TookUs:  took.Microseconds(),
		Results: hits,
	}
	if wantTrace {
		resp.TraceID = tr.ID()
		resp.Trace = tr.Spans()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleBulk reads one query per line from the body and streams one JSON
// object per line back — the bulk mode the paper's applications need. The
// body is bounded by MaxBulkBytes (413 past it) and the query count by
// MaxBulkQueries (400 past it) — over-limit requests fail loudly instead of
// being silently truncated.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	k, err := s.parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxBulkBytes)
	queries, err := ReadQueryLines(r.Body, s.MaxBulkQueries)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.MaxBulkBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	results := s.lookupBulk(queries, k)
	took := time.Since(start)
	s.httpBulk.Observe(took)
	if s.slowLog.Slow(took) {
		s.slowLog.Record(obs.SlowEntry{
			Route: "/bulk", Query: fmt.Sprintf("[%d queries]", len(queries)),
			K: k, DurUs: took.Microseconds(),
		})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, q := range queries {
		hits := make([]Hit, len(results[i]))
		s.graphRLock()
		for j, c := range results[i] {
			hits[j] = Hit{ID: int32(c.ID), Label: s.graph.Label(c.ID), Score: c.Score}
		}
		s.graphRUnlock()
		enc.Encode(LookupResponse{Query: q, Results: hits})
	}
}

// DecodeIngestItems parses an ingest request body — one core.IngestItem or
// a JSON array of them — enforcing maxItems. Shared by the single-node
// /ingest handler and the cluster router's ingest front-end so both accept
// the same wire shapes and apply the same bound.
func DecodeIngestItems(body []byte, maxItems int) ([]core.IngestItem, error) {
	var items []core.IngestItem
	var err error
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(body, &items)
	} else {
		var one core.IngestItem
		err = json.Unmarshal(body, &one)
		items = []core.IngestItem{one}
	}
	if err != nil {
		return nil, fmt.Errorf("decoding ingest items: %v", err)
	}
	if len(items) > maxItems {
		return nil, fmt.Errorf("item count exceeds limit %d", maxItems)
	}
	return items, nil
}

// IngestResponse is the POST /ingest reply.
type IngestResponse struct {
	Enqueued int               `json:"enqueued"`
	Stats    *core.IngestStats `json:"stats,omitempty"`
}

// handleIngest accepts one IngestItem or a JSON array of them, enqueues
// everything, and replies 202 — ingest is asynchronous by design. With
// ?flush=1 it waits until the batch is applied and replies 200 with the
// ingestor's counters, which is how a client gets read-your-writes.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxBulkBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.MaxBulkBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	items, err := DecodeIngestItems(body, s.MaxBulkQueries)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, it := range items {
		if err := s.ingest.Enqueue(it); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	resp := IngestResponse{Enqueued: len(items)}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("flush") == "1" {
		s.ingest.Flush()
		st := s.ingest.Stats()
		resp.Stats = &st
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(resp)
}

// StatsResponse is the /stats reply. Serving is present only when the
// server was built with WithServe. IndexSource tells a cold start that
// attached a saved index artifact ("loaded") from one that re-embedded the
// graph and retrained the quantizer ("rebuilt"); IndexAttachUs is how long
// that took.
type StatsResponse struct {
	Graph         string         `json:"graph"`
	Entities      int            `json:"entities"`
	IndexRows     int            `json:"indexRows"`
	IndexBytes    int            `json:"indexBytes"`
	Dim           int            `json:"dim"`
	Compressed    bool           `json:"compressed"`
	IndexSource   string         `json:"indexSource,omitempty"`
	IndexAttachUs int64          `json:"indexAttachUs,omitempty"`
	Serving       *serve.Stats      `json:"serving,omitempty"`
	Partition     *PartitionInfo    `json:"partition,omitempty"`
	Ingest        *core.IngestStats `json:"ingest,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	cfg := s.model.Config()
	prov := s.model.IndexProvenance()
	s.graphRLock()
	entities := len(s.graph.Entities)
	s.graphRUnlock()
	resp := StatsResponse{
		Graph:         s.graph.Name,
		Entities:      entities,
		IndexRows:     s.model.Index().Len(),
		IndexBytes:    s.model.Index().SizeBytes(),
		Dim:           cfg.Dim,
		Compressed:    cfg.Compress,
		IndexSource:   prov.Source,
		IndexAttachUs: prov.Took.Microseconds(),
	}
	if s.serve != nil {
		st := s.serve.Stats()
		resp.Serving = &st
	}
	resp.Partition = s.partition
	if s.ingest != nil {
		st := s.ingest.Stats()
		resp.Ingest = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
