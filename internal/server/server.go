// Package server exposes a trained EmbLookup model over HTTP — the
// deployment shape the paper positions EmbLookup for: a transparent,
// local, rate-limit-free replacement for remote lookup endpoints.
//
//	GET /lookup?q=<query>&k=<n>   → JSON candidate list
//	GET /bulk  (POST body: one query per line) → NDJSON results
//	GET /stats                    → index and graph statistics
//	GET /healthz                  → 200 ok
//
// Handlers call the model's concurrency-safe entry points directly:
// Lookup and BulkLookup pool their working memory per worker (see
// DESIGN.md "Memory discipline"), so concurrent requests contend only on
// the scratch pool, not on per-request allocation.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

// Server routes lookup requests to a model. Create with New and mount via
// Handler.
type Server struct {
	graph *kg.Graph
	model *core.EmbLookup
	// MaxK bounds the per-request candidate budget.
	MaxK int
}

// New builds a server over a trained model.
func New(g *kg.Graph, model *core.EmbLookup) *Server {
	return &Server{graph: g, model: model, MaxK: 1000}
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /lookup", s.handleLookup)
	mux.HandleFunc("POST /bulk", s.handleBulk)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Hit is one JSON result row.
type Hit struct {
	ID    int32    `json:"id"`
	Label string   `json:"label"`
	Score float64  `json:"score"`
	Types []string `json:"types,omitempty"`
}

// LookupResponse is the /lookup reply.
type LookupResponse struct {
	Query   string `json:"query"`
	TookUs  int64  `json:"tookUs"`
	Results []Hit  `json:"results"`
}

func (s *Server) parseK(r *http.Request) (int, error) {
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > s.MaxK {
			return 0, fmt.Errorf("\"k\" must be an integer in 1..%d", s.MaxK)
		}
		k = v
	}
	return k, nil
}

func (s *Server) hits(q string, k int) []Hit {
	res := s.model.Lookup(q, k)
	hits := make([]Hit, len(res))
	for i, c := range res {
		e := s.graph.Entity(c.ID)
		h := Hit{ID: int32(c.ID), Label: e.Label, Score: c.Score}
		for _, t := range e.Types {
			h.Types = append(h.Types, s.graph.TypeName(t))
		}
		hits[i] = h
	}
	return hits
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
		return
	}
	k, err := s.parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	hits := s.hits(q, k)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(LookupResponse{
		Query:   q,
		TookUs:  time.Since(start).Microseconds(),
		Results: hits,
	})
}

// handleBulk reads one query per line from the body and streams one JSON
// object per line back — the bulk mode the paper's applications need.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	k, err := s.parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var queries []string
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		if q := sc.Text(); q != "" {
			queries = append(queries, q)
		}
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	results := s.model.BulkLookup(queries, k, 0)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, q := range queries {
		hits := make([]Hit, len(results[i]))
		for j, c := range results[i] {
			hits[j] = Hit{ID: int32(c.ID), Label: s.graph.Label(c.ID), Score: c.Score}
		}
		enc.Encode(LookupResponse{Query: q, Results: hits})
	}
	_ = start
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	Graph      string `json:"graph"`
	Entities   int    `json:"entities"`
	IndexRows  int    `json:"indexRows"`
	IndexBytes int    `json:"indexBytes"`
	Dim        int    `json:"dim"`
	Compressed bool   `json:"compressed"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	cfg := s.model.Config()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StatsResponse{
		Graph:      s.graph.Name,
		Entities:   len(s.graph.Entities),
		IndexRows:  s.model.Index().Len(),
		IndexBytes: s.model.Index().SizeBytes(),
		Dim:        cfg.Dim,
		Compressed: cfg.Compress,
	})
}
