package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

var (
	once sync.Once
	tGr  *kg.Graph
	tSrv *Server
	tErr error
)

func testServer(t *testing.T) (*kg.Graph, *Server) {
	t.Helper()
	once.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			tErr = err
			return
		}
		tGr, tSrv = g, New(g, m)
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tGr, tSrv
}

func TestLookupEndpoint(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	label := g.Entities[0].Label
	resp, err := ts.Client().Get(ts.URL + "/lookup?q=" + strings.ReplaceAll(label, " ", "+") + "&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Results) == 0 || len(lr.Results) > 3 {
		t.Fatalf("results = %+v", lr.Results)
	}
	if lr.Results[0].Label != label {
		t.Fatalf("self not first: %+v", lr.Results[0])
	}
}

func TestLookupValidation(t *testing.T) {
	_, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, url := range []string{"/lookup", "/lookup?q=x&k=0", "/lookup?q=x&k=99999", "/lookup?q=x&k=abc"} {
		resp, err := ts.Client().Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestBulkEndpoint(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := g.Entities[0].Label + "\n" + g.Entities[1].Label + "\n"
	resp, err := ts.Client().Post(ts.URL+"/bulk?k=2", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []LookupResponse
	for dec.More() {
		var lr LookupResponse
		if err := dec.Decode(&lr); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, lr)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines", len(lines))
	}
	if lines[0].Query != g.Entities[0].Label {
		t.Fatal("bulk result order broken")
	}
}

func TestStatsAndHealth(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Entities != len(g.Entities) || st.IndexRows == 0 || st.Dim != 64 {
		t.Fatalf("stats = %+v", st)
	}

	h, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	_, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// GET on /bulk must 405 (it is POST-only).
	resp, err := ts.Client().Get(ts.URL + "/bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /bulk status %d, want 405", resp.StatusCode)
	}
}
