package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/serve"
)

var (
	once   sync.Once
	tGr    *kg.Graph
	tModel *core.EmbLookup
	tSrv   *Server
	tErr   error
)

func testServer(t *testing.T) (*kg.Graph, *Server) {
	t.Helper()
	once.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			tErr = err
			return
		}
		tGr, tModel, tSrv = g, m, New(g, m)
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tGr, tSrv
}

// testModel returns the shared trained model (training once for the whole
// package).
func testModel(t *testing.T) (*kg.Graph, *core.EmbLookup) {
	g, _ := testServer(t)
	return g, tModel
}

func TestLookupEndpoint(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	label := g.Entities[0].Label
	resp, err := ts.Client().Get(ts.URL + "/lookup?q=" + strings.ReplaceAll(label, " ", "+") + "&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Results) == 0 || len(lr.Results) > 3 {
		t.Fatalf("results = %+v", lr.Results)
	}
	if lr.Results[0].Label != label {
		t.Fatalf("self not first: %+v", lr.Results[0])
	}
}

func TestLookupValidation(t *testing.T) {
	_, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, url := range []string{"/lookup", "/lookup?q=x&k=0", "/lookup?q=x&k=99999", "/lookup?q=x&k=abc"} {
		resp, err := ts.Client().Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestBulkEndpoint(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := g.Entities[0].Label + "\n" + g.Entities[1].Label + "\n"
	resp, err := ts.Client().Post(ts.URL+"/bulk?k=2", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []LookupResponse
	for dec.More() {
		var lr LookupResponse
		if err := dec.Decode(&lr); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, lr)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines", len(lines))
	}
	if lines[0].Query != g.Entities[0].Label {
		t.Fatal("bulk result order broken")
	}
}

func TestStatsAndHealth(t *testing.T) {
	g, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Entities != len(g.Entities) || st.IndexRows == 0 || st.Dim != 64 {
		t.Fatalf("stats = %+v", st)
	}

	h, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	_, s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// GET on /bulk must 405 (it is POST-only).
	resp, err := ts.Client().Get(ts.URL + "/bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /bulk status %d, want 405", resp.StatusCode)
	}
}

// servingServer builds a Server routed through the full serving substrate
// (sharded scans + coalescer + mention cache).
func servingServer(t *testing.T) (*kg.Graph, *Server, *serve.Serve) {
	t.Helper()
	g, m := testModel(t)
	sv, err := serve.New(m, serve.Options{
		Shards:    2,
		MaxBatch:  4,
		Window:    100 * time.Microsecond,
		CacheSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, New(g, m, WithServe(sv)), sv
}

func fetchLookup(t *testing.T, client *http.Client, base, q string, k int) LookupResponse {
	t.Helper()
	resp, err := client.Get(base + "/lookup?q=" + strings.ReplaceAll(q, " ", "+") + fmt.Sprintf("&k=%d", k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

func fetchBulk(t *testing.T, client *http.Client, base string, queries []string, k int) []LookupResponse {
	t.Helper()
	body := strings.Join(queries, "\n") + "\n"
	resp, err := client.Post(base+fmt.Sprintf("/bulk?k=%d", k), "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bulk status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []LookupResponse
	for dec.More() {
		var lr LookupResponse
		if err := dec.Decode(&lr); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, lr)
	}
	return lines
}

func sameHits(t *testing.T, ctx string, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d hits", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s: hit %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

// TestServeConcurrentEndpoints hammers /lookup and /bulk with 16 goroutines
// through the full serving substrate and checks every response against the
// sequential ground truth from the plain (direct-model) server. The first
// phase runs cache-cold, the second fully cache-warm; run under -race this
// exercises the cache shards, the coalescer, and the sharded scan merge
// concurrently.
func TestServeConcurrentEndpoints(t *testing.T) {
	g, plain := testServer(t)
	_, srv, sv := servingServer(t)

	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	tsServe := httptest.NewServer(srv.Handler())
	defer tsServe.Close()

	const k = 5
	queries := make([]string, 8)
	want := make([][]Hit, len(queries))
	for i := range queries {
		queries[i] = g.Entities[i].Label
		want[i] = fetchLookup(t, tsPlain.Client(), tsPlain.URL, queries[i], k).Results
	}
	bulkWant := make([]LookupResponse, 0)
	bulkWant = append(bulkWant, fetchBulk(t, tsPlain.Client(), tsPlain.URL, queries, k)...)

	for _, phase := range []string{"cold", "warm"} {
		var wg sync.WaitGroup
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				client := tsServe.Client()
				for i := 0; i < 10; i++ {
					qi := (w + i) % len(queries)
					got := fetchLookup(t, client, tsServe.URL, queries[qi], k)
					sameHits(t, fmt.Sprintf("%s /lookup %q worker %d", phase, queries[qi], w), want[qi], got.Results)
					if w%4 == 0 && i%5 == 0 {
						lines := fetchBulk(t, client, tsServe.URL, queries, k)
						if len(lines) != len(queries) {
							t.Errorf("%s /bulk: %d lines", phase, len(lines))
							return
						}
						for j := range lines {
							sameHits(t, fmt.Sprintf("%s /bulk line %d", phase, j), bulkWant[j].Results, lines[j].Results)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if phase == "cold" {
			if st := sv.Stats(); st.Cache == nil || st.Cache.Entries == 0 {
				t.Fatalf("cache never populated: %+v", st)
			}
		}
	}
	st := sv.Stats()
	if st.Cache.Hits == 0 {
		t.Fatalf("warm phase produced no cache hits: %+v", *st.Cache)
	}
}

// TestStatsServing checks that /stats exposes the serving counters when the
// server is built with WithServe, and omits them otherwise.
func TestStatsServing(t *testing.T) {
	g, srv, _ := servingServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetchLookup(t, ts.Client(), ts.URL, g.Entities[0].Label, 3)
	fetchLookup(t, ts.Client(), ts.URL, g.Entities[0].Label, 3) // warm hit

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Serving == nil {
		t.Fatal("serving stats missing with WithServe")
	}
	if st.Serving.Shards != 2 || st.Serving.Cache == nil || st.Serving.Cache.Hits == 0 {
		t.Fatalf("serving stats = %+v", *st.Serving)
	}

	// The plain server must not report a serving section.
	_, plain := testServer(t)
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	respP, err := tsPlain.Client().Get(tsPlain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer respP.Body.Close()
	var stP StatsResponse
	if err := json.NewDecoder(respP.Body).Decode(&stP); err != nil {
		t.Fatal(err)
	}
	if stP.Serving != nil {
		t.Fatalf("plain server leaked serving stats: %+v", *stP.Serving)
	}
}

// TestPprofGating checks that /debug/pprof/ is mounted only with WithPprof.
func TestPprofGating(t *testing.T) {
	g, m := testModel(t)

	plain := httptest.NewServer(New(g, m).Handler())
	defer plain.Close()
	resp, err := plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof exposed without WithPprof")
	}

	prof := httptest.NewServer(New(g, m, WithPprof()).Handler())
	defer prof.Close()
	resp, err = prof.Client().Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d with WithPprof", resp.StatusCode)
	}
}
