package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"emblookup/internal/obs"
	"emblookup/internal/serve"
	"emblookup/internal/tenant"
)

// TenantServer fronts a tenant.Registry: the multi-tenant HTTP surface.
//
//	GET  /t/{tenant}/lookup?q=&k=[&deadline_ms=][&hybrid=1] → JSON candidates
//	POST /t/{tenant}/bulk                                   → NDJSON results
//	GET  /t/{tenant}/stats                                  → one tenant's stats
//	POST /t/{tenant}/reload                                 → hot-swap the model
//	GET  /stats                                             → all tenants
//	GET  /healthz, GET /metrics
//
// Every request passes the tenant's admission gate first (429 +
// Retry-After when throttled or shed), then runs under its deadline budget
// (explicit ?deadline_ms= clamped to the tenant's MaxDeadlineMs, else the
// tenant's default), which the serve substrate propagates into coalescer
// flushes and shard scans — a 504 means the work was cancelled, not
// completed and discarded. Per-tenant MaxK/MaxBatch violations are 400s
// with a structured error body. Unlike the single-tenant Server, errors
// here are always JSON.
type TenantServer struct {
	tenants *tenant.Registry
	reg     *obs.Registry

	mountMetrics bool
	slowLog      *obs.SlowLog
}

// TenantOption configures a TenantServer.
type TenantOption func(*TenantServer)

// WithTenantMetrics mounts GET /metrics over reg (nil = obs.Default()).
func WithTenantMetrics(reg *obs.Registry) TenantOption {
	return func(s *TenantServer) {
		if reg != nil {
			s.reg = reg
		}
		s.mountMetrics = true
	}
}

// WithTenantSlowLog records slow tenant requests and mounts
// GET /debug/slowlog.
func WithTenantSlowLog(sl *obs.SlowLog) TenantOption {
	return func(s *TenantServer) { s.slowLog = sl }
}

// NewTenantServer builds the multi-tenant front-end over a registry.
func NewTenantServer(tenants *tenant.Registry, opts ...TenantOption) *TenantServer {
	s := &TenantServer{tenants: tenants, reg: obs.Default()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler mounts all tenant routes.
func (s *TenantServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /t/{tenant}/lookup", s.handleLookup)
	mux.HandleFunc("POST /t/{tenant}/bulk", s.handleBulk)
	mux.HandleFunc("GET /t/{tenant}/stats", s.handleTenantStats)
	mux.HandleFunc("POST /t/{tenant}/reload", s.handleReload)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(HealthzResponse{Status: "ok"})
	})
	if s.mountMetrics {
		mux.Handle("GET /metrics", s.reg.Handler())
	}
	if s.slowLog != nil {
		mux.Handle("GET /debug/slowlog", s.slowLog.Handler())
	}
	return mux
}

// ErrorBody is the structured error reply of every tenant route: a stable
// machine-readable code, a human message, and — where they apply — the
// violated limit and the back-off hint mirrored from the Retry-After
// header.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the structured error fields.
type ErrorDetail struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Tenant       string `json:"tenant,omitempty"`
	Limit        int    `json:"limit,omitempty"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

func writeError(w http.ResponseWriter, status int, d ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: d})
}

// admit resolves the tenant and passes its admission gate. On success the
// caller owns one Release. Failures have already been written to w.
func (s *TenantServer) admit(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := s.tenants.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorDetail{Code: "tenant_not_found", Message: fmt.Sprintf("unknown tenant %q", name), Tenant: name})
		return nil, false
	}
	if err := t.Admission().Acquire(r.Context()); err != nil {
		var ae *tenant.AdmitError
		if errors.As(err, &ae) {
			w.Header().Set("Retry-After", tenant.RetryAfterHeader(ae.RetryAfter))
			writeError(w, http.StatusTooManyRequests, ErrorDetail{
				Code: ae.Reason, Message: "admission rejected: " + ae.Reason,
				Tenant: name, RetryAfterMs: ae.RetryAfter.Milliseconds(),
			})
			return nil, false
		}
		// The client went away while queued; nothing useful to write.
		writeError(w, http.StatusServiceUnavailable, ErrorDetail{Code: "canceled", Message: err.Error(), Tenant: name})
		return nil, false
	}
	return t, true
}

// deadlineCtx builds the request's budgeted context: an explicit
// ?deadline_ms= (or header) clamped to the tenant's MaxDeadlineMs, else
// the tenant's DefaultDeadlineMs, else just the request context (which
// still cancels on client disconnect).
func deadlineCtx(t *tenant.Tenant, r *http.Request) (context.Context, context.CancelFunc, error) {
	d, ok, err := RequestDeadline(r)
	if err != nil {
		return nil, nil, err
	}
	lim := t.Limits()
	if !ok {
		d = lim.DefaultDeadline()
	} else if maxD := lim.MaxDeadline(); maxD > 0 && d > maxD {
		d = maxD
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *TenantServer) handleLookup(w http.ResponseWriter, r *http.Request) {
	t, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer t.Admission().Release()
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, ErrorDetail{Code: "bad_request", Message: `missing "q" parameter`, Tenant: t.Name()})
		return
	}
	lim := t.Limits()
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := parsePositiveInt(ks)
		if err != nil || v > lim.MaxK {
			writeError(w, http.StatusBadRequest, ErrorDetail{
				Code: "k_too_large", Message: fmt.Sprintf(`"k" must be an integer in 1..%d`, lim.MaxK),
				Tenant: t.Name(), Limit: lim.MaxK,
			})
			return
		}
		k = v
	}
	ctx, cancel, err := deadlineCtx(t, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorDetail{Code: "bad_request", Message: err.Error(), Tenant: t.Name()})
		return
	}
	defer cancel()
	h, err := t.Acquire()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, ErrorDetail{Code: "model_unavailable", Message: err.Error(), Tenant: t.Name()})
		return
	}
	defer h.Release()
	start := time.Now()
	res, err := h.Serve().LookupCtx(ctx, q, k)
	if err != nil {
		t.DeadlineExceeded(1)
		writeError(w, http.StatusGatewayTimeout, ErrorDetail{Code: "deadline_exceeded", Message: "deadline exceeded before the lookup completed", Tenant: t.Name()})
		return
	}
	if r.URL.Query().Get("hybrid") == "1" {
		res = serve.HybridRerank(q, res, h.Graph().Label)
	}
	took := time.Since(start)
	t.Latency().Observe(took)
	if s.slowLog.Slow(took) {
		s.slowLog.Record(obs.SlowEntry{Route: "/t/" + t.Name() + "/lookup", Query: q, K: k, DurUs: took.Microseconds()})
	}
	g := h.Graph()
	hits := make([]Hit, len(res))
	for i, c := range res {
		hits[i] = Hit{ID: int32(c.ID), Label: g.Label(c.ID), Score: c.Score}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(LookupResponse{Query: q, TookUs: took.Microseconds(), Results: hits})
}

func (s *TenantServer) handleBulk(w http.ResponseWriter, r *http.Request) {
	t, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer t.Admission().Release()
	lim := t.Limits()
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := parsePositiveInt(ks)
		if err != nil || v > lim.MaxK {
			writeError(w, http.StatusBadRequest, ErrorDetail{
				Code: "k_too_large", Message: fmt.Sprintf(`"k" must be an integer in 1..%d`, lim.MaxK),
				Tenant: t.Name(), Limit: lim.MaxK,
			})
			return
		}
		k = v
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	queries, err := ReadQueryLines(r.Body, lim.MaxBatch)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorDetail{Code: "body_too_large", Message: "request body exceeds 1 MiB", Tenant: t.Name()})
			return
		}
		writeError(w, http.StatusBadRequest, ErrorDetail{
			Code: "batch_too_large", Message: fmt.Sprintf("at most %d queries per bulk request", lim.MaxBatch),
			Tenant: t.Name(), Limit: lim.MaxBatch,
		})
		return
	}
	ctx, cancel, err := deadlineCtx(t, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorDetail{Code: "bad_request", Message: err.Error(), Tenant: t.Name()})
		return
	}
	defer cancel()
	h, err := t.Acquire()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, ErrorDetail{Code: "model_unavailable", Message: err.Error(), Tenant: t.Name()})
		return
	}
	defer h.Release()
	start := time.Now()
	results, err := h.Serve().BulkLookupCtx(ctx, queries, k)
	if err != nil {
		t.DeadlineExceeded(int64(len(queries)))
		writeError(w, http.StatusGatewayTimeout, ErrorDetail{Code: "deadline_exceeded", Message: "deadline exceeded before the batch completed", Tenant: t.Name()})
		return
	}
	hybrid := r.URL.Query().Get("hybrid") == "1"
	took := time.Since(start)
	t.Latency().Observe(took)
	g := h.Graph()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, q := range queries {
		res := results[i]
		if hybrid {
			res = serve.HybridRerank(q, res, g.Label)
		}
		hits := make([]Hit, len(res))
		for j, c := range res {
			hits[j] = Hit{ID: int32(c.ID), Label: g.Label(c.ID), Score: c.Score}
		}
		enc.Encode(LookupResponse{Query: q, Results: hits})
	}
}

func (s *TenantServer) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.tenants.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorDetail{Code: "tenant_not_found", Message: fmt.Sprintf("unknown tenant %q", name), Tenant: name})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(t.Stats())
}

// handleReload hot-swaps the tenant's model from its configured artifact
// paths: the new generation attaches, the pointer swaps atomically, and
// the old closes once its in-flight requests drain. In-flight and new
// requests never block.
func (s *TenantServer) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, ok := s.tenants.Tenant(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorDetail{Code: "tenant_not_found", Message: fmt.Sprintf("unknown tenant %q", name), Tenant: name})
		return
	}
	if err := t.Swap(); err != nil {
		writeError(w, http.StatusServiceUnavailable, ErrorDetail{Code: "model_unavailable", Message: err.Error(), Tenant: name})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "reloaded", "tenant": name})
}

// TenantsStatsResponse is the global /stats reply: every tenant's section.
type TenantsStatsResponse struct {
	Tenants []tenant.TenantStats `json:"tenants"`
}

func (s *TenantServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(TenantsStatsResponse{Tenants: s.tenants.Stats()})
}

// parsePositiveInt parses a strictly positive integer.
func parsePositiveInt(s string) (int, error) {
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("must be positive")
	}
	return v, nil
}
