package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"emblookup/internal/obs"
	"emblookup/internal/tenant"
)

var (
	tenantOnce sync.Once
	tenantDir  string
	tenantErr  error
)

// tenantArtifacts saves the shared test model as on-disk artifacts once.
func tenantArtifacts(t *testing.T) (graphPath, modelPath string) {
	t.Helper()
	g, m := testModel(t)
	tenantOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tenantsrv")
		if err != nil {
			tenantErr = err
			return
		}
		if err := g.SaveFile(filepath.Join(dir, "graph.bin")); err != nil {
			tenantErr = err
			return
		}
		if err := m.SaveFileWithIndex(filepath.Join(dir, "model.bin")); err != nil {
			tenantErr = err
			return
		}
		tenantDir = dir
	})
	if tenantErr != nil {
		t.Fatal(tenantErr)
	}
	return filepath.Join(tenantDir, "graph.bin"), filepath.Join(tenantDir, "model.bin")
}

func tenantTestServer(t *testing.T, tenants ...tenant.TenantConfig) (*httptest.Server, *tenant.Registry) {
	t.Helper()
	reg, err := tenant.NewRegistry(tenant.Config{Tenants: tenants}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(NewTenantServer(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func decodeErrorBody(t *testing.T, resp *http.Response) ErrorDetail {
	t.Helper()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	if eb.Error.Code == "" {
		t.Fatal("error body has no code")
	}
	return eb.Error
}

func TestTenantLookupAndStats(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	g, _ := testModel(t)
	ts, _ := tenantTestServer(t,
		tenant.TenantConfig{Name: "wd", Graph: gp, Model: mp, Shards: 1},
		tenant.TenantConfig{Name: "db", Graph: gp, Model: mp, Shards: 1},
	)

	label := g.Entities[0].Label
	resp, err := ts.Client().Get(ts.URL + "/t/wd/lookup?k=3&q=" + url.QueryEscape(label))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Results) == 0 || lr.Results[0].Label != label {
		t.Fatalf("results = %+v", lr.Results)
	}

	// Global stats show both tenants; only the queried one is loaded.
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st TenantsStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("stats tenants = %d", len(st.Tenants))
	}
	byName := map[string]tenant.TenantStats{}
	for _, s := range st.Tenants {
		byName[s.Name] = s
	}
	if !byName["wd"].Loaded || byName["wd"].Admission.Admitted != 1 {
		t.Fatalf("wd stats = %+v", byName["wd"])
	}
	if byName["db"].Loaded {
		t.Fatal("db loaded without ever being queried (lazy load broken)")
	}

	// Per-tenant stats route.
	resp, err = ts.Client().Get(ts.URL + "/t/wd/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var one tenant.TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "wd" || !one.Loaded {
		t.Fatalf("tenant stats = %+v", one)
	}
}

func TestTenantUnknown404(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	ts, _ := tenantTestServer(t, tenant.TenantConfig{Name: "wd", Graph: gp, Model: mp, Shards: 1})
	resp, err := ts.Client().Get(ts.URL + "/t/nope/lookup?q=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if d := decodeErrorBody(t, resp); d.Code != "tenant_not_found" {
		t.Fatalf("code = %q", d.Code)
	}
}

// TestTenantLimitValidation: per-tenant MaxK/MaxBatch violations are 400s
// with structured bodies naming the violated limit.
func TestTenantLimitValidation(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	ts, _ := tenantTestServer(t, tenant.TenantConfig{
		Name: "wd", Graph: gp, Model: mp, Shards: 1,
		Limits: tenant.Limits{MaxK: 5, MaxBatch: 3},
	})

	resp, err := ts.Client().Get(ts.URL + "/t/wd/lookup?q=x&k=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("k over limit: status %d, want 400", resp.StatusCode)
	}
	d := decodeErrorBody(t, resp)
	if d.Code != "k_too_large" || d.Limit != 5 || d.Tenant != "wd" {
		t.Fatalf("error detail = %+v", d)
	}

	resp, err = ts.Client().Post(ts.URL+"/t/wd/bulk?k=2", "text/plain",
		strings.NewReader("a\nb\nc\nd\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("batch over limit: status %d, want 400", resp.StatusCode)
	}
	d = decodeErrorBody(t, resp)
	if d.Code != "batch_too_large" || d.Limit != 3 {
		t.Fatalf("error detail = %+v", d)
	}

	// Missing q and malformed deadline are 400s too.
	for _, u := range []string{"/t/wd/lookup?k=3", "/t/wd/lookup?q=x&deadline_ms=bogus"} {
		resp, err := ts.Client().Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400", u, resp.StatusCode)
		}
		decodeErrorBody(t, resp)
		resp.Body.Close()
	}
}

// TestTenantRateLimit429: past the token bucket the server answers 429 with
// a Retry-After header and a structured body carrying the same hint.
func TestTenantRateLimit429(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	g, _ := testModel(t)
	ts, _ := tenantTestServer(t, tenant.TenantConfig{
		Name: "wd", Graph: gp, Model: mp, Shards: 1,
		Limits: tenant.Limits{RatePerSec: 0.001, Burst: 2},
	})
	q := url.QueryEscape(g.Entities[0].Label)
	var got429 *http.Response
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/t/wd/lookup?k=3&q=" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if got429 == nil {
		t.Fatal("no 429 after draining a 2-token bucket")
	}
	defer got429.Body.Close()
	if ra := got429.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	d := decodeErrorBody(t, got429)
	if d.Code != tenant.ReasonRateLimited || d.RetryAfterMs <= 0 {
		t.Fatalf("error detail = %+v", d)
	}
}

// TestTenantDeadline504: an impossible deadline is answered 504 with a
// structured body and increments the tenant's deadline_exceeded counter
// exactly once.
func TestTenantDeadline504(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	ts, reg := tenantTestServer(t, tenant.TenantConfig{
		Name: "wd", Graph: gp, Model: mp, Shards: 1, CacheSize: -1, Preload: true,
	})
	resp, err := ts.Client().Get(ts.URL + "/t/wd/lookup?q=zzz&deadline_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// 1ms may occasionally be enough on a fast machine; only assert the
	// error contract when the deadline actually fired.
	if resp.StatusCode == http.StatusGatewayTimeout {
		d := decodeErrorBody(t, resp)
		if d.Code != "deadline_exceeded" {
			t.Fatalf("error detail = %+v", d)
		}
		tn, _ := reg.Tenant("wd")
		if got := tn.Stats().DeadlineExceeded; got != 1 {
			t.Fatalf("deadline_exceeded = %d, want exactly 1", got)
		}
	} else if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestTenantHybridLookup: ?hybrid=1 returns the same candidate set
// re-ordered deterministically.
func TestTenantHybridLookup(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	g, _ := testModel(t)
	ts, _ := tenantTestServer(t, tenant.TenantConfig{Name: "wd", Graph: gp, Model: mp, Shards: 1})
	q := url.QueryEscape(g.Entities[1].Label)

	fetch := func(u string) []Hit {
		resp, err := ts.Client().Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", u, resp.StatusCode)
		}
		var lr LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr.Results
	}
	plain := fetch("/t/wd/lookup?k=5&q=" + q)
	hybrid := fetch("/t/wd/lookup?k=5&q=" + q + "&hybrid=1")
	again := fetch("/t/wd/lookup?k=5&q=" + q + "&hybrid=1")
	if len(hybrid) != len(plain) {
		t.Fatalf("hybrid changed the candidate count: %d vs %d", len(hybrid), len(plain))
	}
	ids := map[int32]bool{}
	for _, h := range plain {
		ids[h.ID] = true
	}
	for i, h := range hybrid {
		if !ids[h.ID] {
			t.Fatalf("hybrid invented candidate %d", h.ID)
		}
		if h.ID != again[i].ID || h.Score != again[i].Score {
			t.Fatalf("hybrid ordering not deterministic at %d: %+v vs %+v", i, h, again[i])
		}
	}
	// The exact surface-form match must be ranked first under hybrid.
	if hybrid[0].Label != g.Entities[1].Label {
		t.Fatalf("exact match not first under hybrid: %+v", hybrid[0])
	}
}

// TestTenantReload: POST /t/{tenant}/reload hot-swaps without breaking
// subsequent lookups.
func TestTenantReload(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	g, _ := testModel(t)
	ts, reg := tenantTestServer(t, tenant.TenantConfig{Name: "wd", Graph: gp, Model: mp, Shards: 1, Preload: true})
	resp, err := ts.Client().Post(ts.URL+"/t/wd/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	q := url.QueryEscape(g.Entities[0].Label)
	resp, err = ts.Client().Get(ts.URL + "/t/wd/lookup?k=3&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("lookup after reload: status %d", resp.StatusCode)
	}
	tn, _ := reg.Tenant("wd")
	if !tn.Loaded() {
		t.Fatal("tenant unloaded after reload")
	}
}

// TestTenantBulk exercises the NDJSON bulk route end to end.
func TestTenantBulk(t *testing.T) {
	gp, mp := tenantArtifacts(t)
	g, _ := testModel(t)
	ts, _ := tenantTestServer(t, tenant.TenantConfig{Name: "wd", Graph: gp, Model: mp, Shards: 1})
	body := g.Entities[0].Label + "\n" + g.Entities[1].Label + "\n"
	resp, err := ts.Client().Post(ts.URL+"/t/wd/bulk?k=3", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var rows []LookupResponse
	for dec.More() {
		var lr LookupResponse
		if err := dec.Decode(&lr); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, lr)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, lr := range rows {
		if len(lr.Results) == 0 || lr.Results[0].Label != g.Entities[i].Label {
			t.Fatalf("row %d = %+v", i, lr)
		}
	}
}
