// Package strutil implements the string-similarity primitives used both by
// the baseline lookup services (Table V of the paper) and by the noise
// injection machinery: Levenshtein and Damerau-Levenshtein edit distances,
// q-gram decomposition and overlap scores, token operations, and the
// FuzzyWuzzy-style similarity ratios.
package strutil

// Levenshtein returns the edit distance between a and b using unit costs for
// insertion, deletion, and substitution. It runs in O(len(a)·len(b)) time and
// O(min(len(a),len(b))) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinBounded returns the edit distance between a and b if it is at
// most maxDist, or maxDist+1 otherwise. The early-exit banded computation is
// the optimization used by "optimized Levenshtein modules" referenced in the
// paper's introduction.
func LevenshteinBounded(a, b string, maxDist int) int {
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > maxDist {
		return maxDist + 1
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	if prev[len(rb)] > maxDist {
		return maxDist + 1
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions in addition to insert/delete/substitute. Transpositions are
// one of the paper's injected noise classes, so the repair-oriented baselines
// use this variant.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	d0 := make([]int, lb+1)
	d1 := make([]int, lb+1)
	d2 := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		d1[j] = j
	}
	for i := 1; i <= la; i++ {
		d2[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d2[j] = min3(d1[j]+1, d2[j-1]+1, d1[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d0[j-2] + 1; t < d2[j] {
					d2[j] = t
				}
			}
		}
		d0, d1, d2 = d1, d2, d0
	}
	return d1[lb]
}

// Similarity returns a normalized similarity in [0,1] derived from the
// Levenshtein distance: 1 - dist/max(len). Two empty strings have
// similarity 1.
func Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
