package strutil

import "strings"

// QGrams returns the multiset of q-grams of s after padding with q-1 leading
// and trailing '#' markers, as used by the q-gram baseline index. The result
// maps each gram to its multiplicity.
func QGrams(s string, q int) map[string]int {
	if q <= 0 {
		q = 2
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(s) + pad
	runes := []rune(padded)
	grams := make(map[string]int)
	for i := 0; i+q <= len(runes); i++ {
		grams[string(runes[i:i+q])]++
	}
	return grams
}

// QGramList returns the q-grams of s in order, with the same padding as
// QGrams. Duplicates are preserved.
func QGramList(s string, q int) []string {
	if q <= 0 {
		q = 2
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(s) + pad
	runes := []rune(padded)
	var grams []string
	for i := 0; i+q <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+q]))
	}
	return grams
}

// QGramOverlap returns the size of the multiset intersection of the q-grams
// of a and b.
func QGramOverlap(a, b string, q int) int {
	ga := QGrams(a, q)
	gb := QGrams(b, q)
	overlap := 0
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			if cb < ca {
				overlap += cb
			} else {
				overlap += ca
			}
		}
	}
	return overlap
}

// QGramSimilarity returns the Dice coefficient over the q-gram multisets of
// a and b, a value in [0,1].
func QGramSimilarity(a, b string, q int) float64 {
	ga := QGrams(a, q)
	gb := QGrams(b, q)
	na, nb := 0, 0
	for _, c := range ga {
		na += c
	}
	for _, c := range gb {
		nb += c
	}
	if na+nb == 0 {
		return 1
	}
	overlap := 0
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			if cb < ca {
				overlap += cb
			} else {
				overlap += ca
			}
		}
	}
	return 2 * float64(overlap) / float64(na+nb)
}
