package strutil

import (
	"sort"
	"strings"
	"unicode/utf8"
)

// Ratio is the FuzzyWuzzy "simple ratio": normalized Levenshtein similarity
// scaled to [0,100].
func Ratio(a, b string) int {
	return int(Similarity(strings.ToLower(a), strings.ToLower(b))*100 + 0.5)
}

// PartialRatio compares the shorter string against every equal-length
// substring window of the longer string and returns the best Ratio. This is
// FuzzyWuzzy's fuzz.partial_ratio.
func PartialRatio(a, b string) int {
	sa, sb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	if len(sa) == 0 {
		if len(sb) == 0 {
			return 100
		}
		return 0
	}
	best := 0
	for i := 0; i+len(sa) <= len(sb); i++ {
		window := string(sb[i : i+len(sa)])
		if r := Ratio(string(sa), window); r > best {
			best = r
			if best == 100 {
				break
			}
		}
	}
	return best
}

// TokenSortRatio tokenizes, sorts, and rejoins both strings before applying
// Ratio, making it robust to the "swapping the tokens" noise class used in
// the paper's error injection.
func TokenSortRatio(a, b string) int {
	return Ratio(sortTokens(a), sortTokens(b))
}

// TokenSetRatio compares the token-set intersection and differences of a and
// b, following FuzzyWuzzy's fuzz.token_set_ratio.
func TokenSetRatio(a, b string) int {
	ta := tokenSet(a)
	tb := tokenSet(b)
	var inter, diffA, diffB []string
	for t := range ta {
		if tb[t] {
			inter = append(inter, t)
		} else {
			diffA = append(diffA, t)
		}
	}
	for t := range tb {
		if !ta[t] {
			diffB = append(diffB, t)
		}
	}
	sort.Strings(inter)
	sort.Strings(diffA)
	sort.Strings(diffB)
	s0 := strings.Join(inter, " ")
	s1 := strings.TrimSpace(s0 + " " + strings.Join(diffA, " "))
	s2 := strings.TrimSpace(s0 + " " + strings.Join(diffB, " "))
	best := Ratio(s0, s1)
	if r := Ratio(s0, s2); r > best {
		best = r
	}
	if r := Ratio(s1, s2); r > best {
		best = r
	}
	return best
}

// WRatio is FuzzyWuzzy's weighted ratio: a blend of the plain, partial, and
// token-based ratios. The FuzzyWuzzy baseline service scores candidates with
// WRatio.
func WRatio(a, b string) int {
	base := Ratio(a, b)
	if r := TokenSortRatio(a, b); r > base {
		base = r
	}
	if r := int(float64(TokenSetRatio(a, b)) * 0.95); r > base {
		base = r
	}
	la, lb := len(a), len(b)
	longer, shorter := la, lb
	if lb > la {
		longer, shorter = lb, la
	}
	if shorter > 0 && float64(longer)/float64(shorter) > 1.5 {
		if r := int(float64(PartialRatio(a, b)) * 0.9); r > base {
			base = r
		}
	}
	return base
}

// Tokenize splits s into lowercase word tokens on any non-letter/digit rune.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	var toks []string
	for ts, te := NextToken(s, 0); ts >= 0; ts, te = NextToken(s, te) {
		toks = append(toks, s[ts:te])
	}
	return toks
}

// NextToken scans s from byte offset start and returns the byte range
// [tokStart, tokEnd) of the next token, or (-1, -1) when none remains.
// Token boundaries match Tokenize, but no slice is allocated, so hot loops
// (the n-gram feature extractor) can walk tokens without garbage. Unlike
// Tokenize, s is not lower-cased; callers normalize first.
func NextToken(s string, start int) (int, int) {
	i := start
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if isWordRune(r) {
			break
		}
		i += size
	}
	if i >= len(s) {
		return -1, -1
	}
	end := i
	for end < len(s) {
		r, size := utf8.DecodeRuneInString(s[end:])
		if !isWordRune(r) {
			break
		}
		end += size
	}
	return i, end
}

func isWordRune(r rune) bool {
	return r == '\'' || r == '-' ||
		('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') ||
		r > 127 // keep non-ASCII letters together
}

func sortTokens(s string) string {
	toks := Tokenize(s)
	sort.Strings(toks)
	return strings.Join(toks, " ")
}

func tokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// Abbreviate returns the initialism of s: the first letter of each token,
// upper-cased ("European Union" -> "EU"). Single-token strings return their
// first three letters upper-cased, mirroring common abbreviation styles in
// knowledge-graph aliases.
func Abbreviate(s string) string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	if len(toks) == 1 {
		r := []rune(toks[0])
		n := 3
		if len(r) < n {
			n = len(r)
		}
		return strings.ToUpper(string(r[:n]))
	}
	var b strings.Builder
	for _, t := range toks {
		r := []rune(t)
		b.WriteRune(r[0])
	}
	return strings.ToUpper(b.String())
}
