package strutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"germany", "germany", 0},
		{"germany", "germoney", 2},
		{"berlin", "bellin", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 50 || len(b) > 50 {
			return true
		}
		d := Levenshtein(a, b)
		// Symmetry, identity, and length bound.
		la, lb := len([]rune(a)), len([]rune(b))
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		return d == Levenshtein(b, a) &&
			Levenshtein(a, a) == 0 &&
			d >= abs(la-lb) && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 30 || len(b) > 30 || len(c) > 30 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinBounded(t *testing.T) {
	if got := LevenshteinBounded("kitten", "sitting", 3); got != 3 {
		t.Fatalf("bounded = %d, want 3", got)
	}
	if got := LevenshteinBounded("kitten", "sitting", 2); got != 3 {
		t.Fatalf("bounded should report maxDist+1, got %d", got)
	}
	if got := LevenshteinBounded("aaaaaaaa", "b", 2); got != 3 {
		t.Fatalf("length gap early exit failed: %d", got)
	}
}

func TestLevenshteinBoundedAgreesWithExact(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		exact := Levenshtein(a, b)
		for _, m := range []int{0, 1, 2, 5, 100} {
			got := LevenshteinBounded(a, b, m)
			if exact <= m && got != exact {
				return false
			}
			if exact > m && got != m+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	if got := DamerauLevenshtein("abcd", "abdc"); got != 1 {
		t.Fatalf("transposition should cost 1, got %d", got)
	}
	if got := Levenshtein("abcd", "abdc"); got != 2 {
		t.Fatalf("plain Levenshtein transposition should cost 2, got %d", got)
	}
	// This implementation is the optimal-string-alignment variant, which
	// forbids editing a substring after transposing it: OSA(ca,abc)=3,
	// whereas unrestricted Damerau would give 2.
	if got := DamerauLevenshtein("ca", "abc"); got != 3 {
		t.Fatalf("OSA(ca,abc) = %d, want 3", got)
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("", "") != 1 {
		t.Fatal("empty-empty similarity should be 1")
	}
	if s := Similarity("abc", "abc"); s != 1 {
		t.Fatalf("identical similarity = %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("ab", 2)
	// padded "#ab#": grams #a, ab, b#
	if len(g) != 3 || g["#a"] != 1 || g["ab"] != 1 || g["b#"] != 1 {
		t.Fatalf("QGrams = %v", g)
	}
	list := QGramList("ab", 2)
	if len(list) != 3 || list[1] != "ab" {
		t.Fatalf("QGramList = %v", list)
	}
}

func TestQGramSimilarity(t *testing.T) {
	if s := QGramSimilarity("germany", "germany", 3); s != 1 {
		t.Fatalf("identical q-gram sim = %v", s)
	}
	near := QGramSimilarity("germany", "germoney", 3)
	far := QGramSimilarity("germany", "australia", 3)
	if near <= far {
		t.Fatalf("expected near (%v) > far (%v)", near, far)
	}
	if s := QGramSimilarity("", "", 3); s != 1 {
		t.Fatalf("empty q-gram sim = %v", s)
	}
}

func TestQGramSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		s := QGramSimilarity(a, b, 3)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio("germany", "GERMANY") != 100 {
		t.Fatal("Ratio should be case-insensitive")
	}
	// Distance 2 over max length 8 → similarity 0.75.
	if r := Ratio("germany", "germoney"); r != 75 {
		t.Fatalf("Ratio(germany,germoney) = %d, want 75", r)
	}
}

func TestPartialRatio(t *testing.T) {
	if r := PartialRatio("berlin", "east berlin city"); r != 100 {
		t.Fatalf("substring partial ratio = %d, want 100", r)
	}
	if r := PartialRatio("", ""); r != 100 {
		t.Fatalf("empty partial ratio = %d", r)
	}
	if r := PartialRatio("", "abc"); r != 0 {
		t.Fatalf("empty-vs-nonempty partial ratio = %d", r)
	}
}

func TestTokenSortRatio(t *testing.T) {
	if r := TokenSortRatio("new york mets", "mets new york"); r != 100 {
		t.Fatalf("token sort on reordered tokens = %d, want 100", r)
	}
}

func TestTokenSetRatio(t *testing.T) {
	if r := TokenSetRatio("mets vs braves", "new york mets vs atlanta braves"); r < 90 {
		t.Fatalf("token set ratio = %d, want >= 90", r)
	}
}

func TestWRatioOrdering(t *testing.T) {
	// WRatio must score the true match above an unrelated string.
	match := WRatio("federal republic of germany", "germany federal republic")
	miss := WRatio("federal republic of germany", "kingdom of spain")
	if match <= miss {
		t.Fatalf("WRatio ordering violated: match=%d miss=%d", match, miss)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("East Berlin, Germany!")
	want := []string{"east", "berlin", "germany"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("Tokenize = %v", toks)
		}
	}
}

func TestAbbreviate(t *testing.T) {
	if a := Abbreviate("European Union"); a != "EU" {
		t.Fatalf("Abbreviate = %q", a)
	}
	if a := Abbreviate("Germany"); a != "GER" {
		t.Fatalf("Abbreviate single = %q", a)
	}
	if a := Abbreviate(""); a != "" {
		t.Fatalf("Abbreviate empty = %q", a)
	}
	if a := Abbreviate("Federal Republic of Germany"); a != "FROG" && !strings.HasPrefix(a, "F") {
		t.Fatalf("Abbreviate = %q", a)
	}
}
