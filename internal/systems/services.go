package systems

import (
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/tabular"
	"emblookup/internal/tasks"
)

type tabularDataset = tabular.Dataset

// CascadeService tries each stage in order and returns the first non-empty
// candidate set — the multi-service lookup pattern JenTab (and many SemTab
// submissions) use.
type CascadeService struct {
	ServiceName string
	Stages      []lookup.Service
}

// Name implements lookup.Service.
func (c *CascadeService) Name() string { return c.ServiceName }

// Lookup tries each stage until one produces candidates.
func (c *CascadeService) Lookup(q string, k int) []lookup.Candidate {
	for _, s := range c.Stages {
		if res := s.Lookup(q, k); len(res) > 0 {
			return res
		}
	}
	return nil
}

// VirtualElapsed sums the virtual time of any simulated remote stages.
func (c *CascadeService) VirtualElapsed() time.Duration {
	var total time.Duration
	for _, s := range c.Stages {
		if vc, ok := s.(lookup.VirtualClock); ok {
			total += vc.VirtualElapsed()
		}
	}
	return total
}

// ResetVirtual resets all simulated remote stages.
func (c *CascadeService) ResetVirtual() {
	for _, s := range c.Stages {
		if vc, ok := s.(lookup.VirtualClock); ok {
			vc.ResetVirtual()
		}
	}
}

// DoSeR is the entity-disambiguation system: candidate generation through a
// lookup service, then collective PageRank-style disambiguation.
type DoSeR struct {
	graph    *kg.Graph
	Original lookup.Service
	Config   tasks.EAConfig
}

// Name returns the system name.
func (d *DoSeR) Name() string { return "DoSeR" }

// Run disambiguates every row of every table in ds: the entity cells of a
// row form one mention list (they are contextually related, which is what
// collective disambiguation exploits).
func (d *DoSeR) Run(ds *tabular.Dataset, svc lookup.Service, parallelism int) *tasks.EAResult {
	agg := &tasks.EAResult{}
	cfg := d.Config
	cfg.Parallelism = parallelism
	for _, tb := range ds.Tables {
		for _, row := range tb.Rows {
			var mentions []string
			var truths []kg.EntityID
			for _, cell := range row {
				if cell.IsEntity() {
					mentions = append(mentions, cell.Text)
					truths = append(truths, cell.Truth)
				}
			}
			if len(mentions) == 0 {
				continue
			}
			r := tasks.Disambiguate(d.graph, svc, mentions, truths, cfg)
			agg.Confusion.Add(r.Confusion)
			agg.LookupTime += r.LookupTime
			agg.LookupCalls += r.LookupCalls
			agg.Assignments = append(agg.Assignments, r.Assignments...)
		}
	}
	return agg
}

// Katara is the data-repair system: mask-aware subject lookup plus
// relation-path imputation.
type Katara struct {
	graph    *kg.Graph
	Original lookup.Service
	Config   tasks.DRConfig
}

// Name returns the system name.
func (k *Katara) Name() string { return "Katara" }

// Run masks fraction of ds's cells and repairs them using svc for the
// subject lookups.
func (k *Katara) Run(ds *tabular.Dataset, svc lookup.Service, fraction float64, seed uint64, parallelism int) *tasks.DRResult {
	masked, cells := tasks.MaskCells(ds, fraction, seed)
	cfg := k.Config
	cfg.Parallelism = parallelism
	return tasks.Repair(masked, cells, svc, cfg)
}
