// Package systems re-implements the five downstream applications whose
// lookup component the paper replaces with EmbLookup (Section IV): the
// SemTab-2020 annotation systems bbw, MantisTable, and JenTab (CEA + CTA),
// the DoSeR entity disambiguator, and the Katara data-repair system. Each
// system couples (a) a default "original" lookup service matching the
// published system's design — bbw queries a SearX-style metasearch
// endpoint, MantisTable an ElasticSearch index, JenTab a cascade of the
// Wikidata API and local fuzzy matching — with (b) its own candidate
// post-processing. Swapping the lookup service while keeping (b) fixed is
// exactly the paper's experiment.
package systems

import (
	"strings"

	"emblookup/internal/baselines"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/remote"
	"emblookup/internal/strutil"
	"emblookup/internal/tasks"
)

// System bundles a named annotation system: its original lookup service and
// its CEA ranker.
type System struct {
	// SystemName is the published system this reproduces.
	SystemName string
	// Original is the lookup service the published system used.
	Original lookup.Service
	// Ranker is the system's candidate post-processing for CEA.
	Ranker tasks.Ranker
	// K is the candidate budget the system requests per lookup.
	K int
}

// Name returns the system's name.
func (s *System) Name() string { return s.SystemName }

// RunCEA annotates ds's cells using svc for lookup and the system's own
// post-processing.
func (s *System) RunCEA(ds *TabularDataset, svc lookup.Service, parallelism int) *tasks.Result {
	cfg := tasks.CEAConfig{K: s.K, Parallelism: parallelism}
	return tasks.CEA(ds, svc, s.Ranker, cfg)
}

// RunCTA annotates ds's columns using svc for lookup.
func (s *System) RunCTA(ds *TabularDataset, svc lookup.Service, parallelism int) *tasks.CTAResult {
	cfg := tasks.CEAConfig{K: s.K, Parallelism: parallelism}
	return tasks.CTA(ds, svc, cfg)
}

// TabularDataset aliases tabular.Dataset to keep signatures readable.
type TabularDataset = tabularDataset

// NewBBW builds the bbw system over g: its original lookup is a SearX-style
// metasearch endpoint (bbw's defining trait), and its ranker blends lookup
// score, string similarity, and column-type coherence — bbw's "contextual
// matching" stage.
func NewBBW(g *kg.Graph) *System {
	// The metasearch results still have to be resolved to KG entities by
	// their labels — like the paper's originals, the pipeline is unaware of
	// KG aliases (Section IV-D), which is what makes semantic lookups fail.
	labelsOnly := lookup.CorpusFromGraph(g, false)
	backend := baselines.NewFuzzyWuzzy(labelsOnly)
	return &System{
		SystemName: "bbw",
		Original:   remote.New("searx-api", backend, remote.SearXConfig()),
		Ranker:     coherenceRanker(0.5, 0.3),
		K:          20,
	}
}

// NewMantisTable builds the MantisTable system: ElasticSearch lookup over
// entity labels, and a ranker dominated by column analysis (MantisTable's
// signature concept-annotation phase).
func NewMantisTable(g *kg.Graph) *System {
	labels := lookup.CorpusFromGraph(g, false)
	return &System{
		SystemName: "MantisTable",
		Original:   baselines.NewElastic(labels),
		Ranker:     coherenceRanker(0.2, 0.7),
		K:          20,
	}
}

// NewJenTab builds the JenTab system: a cascade of lookup strategies
// (exact first, then the Wikidata API, then local fuzzy matching) with a
// Levenshtein-filtered ranker, mirroring JenTab's pool of create/filter
// strategies.
func NewJenTab(g *kg.Graph) *System {
	labels := lookup.CorpusFromGraph(g, false)
	// JenTab's primary candidate source is the Wikidata lookup endpoint
	// (that remote dependency is why SemTab submissions took days); local
	// fuzzy matching only catches what the endpoint misses. Like the
	// paper's originals, the cached lookup tables cover entity labels, not
	// the alias set (Section IV-D).
	cascade := &CascadeService{
		ServiceName: "jentab-cascade",
		Stages: []lookup.Service{
			remote.New("wikidata-api", baselines.NewExact(labels), remote.WikidataAPIConfig()),
			baselines.NewLevenshteinScan(labels),
		},
	}
	return &System{
		SystemName: "JenTab",
		Original:   cascade,
		Ranker:     levenshteinFilterRanker(0.45),
		K:          20,
	}
}

// NewDoSeR builds the DoSeR disambiguation system: ElasticSearch-style
// candidate generation plus collective PageRank disambiguation (implemented
// in tasks.Disambiguate).
func NewDoSeR(g *kg.Graph) *DoSeR {
	labels := lookup.CorpusFromGraph(g, false)
	return &DoSeR{
		graph:    g,
		Original: baselines.NewElastic(labels),
		Config:   tasks.DefaultEAConfig(),
	}
}

// NewKatara builds the Katara repair system: fuzzy lookup of the row
// subject followed by relation-path validation against the knowledge graph.
func NewKatara(g *kg.Graph) *Katara {
	labels := lookup.CorpusFromGraph(g, false)
	return &Katara{
		graph:    g,
		Original: baselines.NewLevenshteinScan(labels),
		Config:   tasks.DefaultDRConfig(),
	}
}

// coherenceRanker scores candidate c as
// lookupScore + wSim·similarity(query, label) + wType·typeSupport and picks
// the argmax. The lookup scores are min-max normalized across the candidate
// set so services with different score scales (BM25, ratios, negated
// embedding distances) compose — real systems feed their engine's relevance
// score through in the same way.
func coherenceRanker(wSim, wType float64) tasks.Ranker {
	return tasks.RankerFunc(func(ctx *tasks.Context, cands []lookup.Candidate) kg.EntityID {
		if len(cands) == 0 {
			return kg.NoEntity
		}
		best := kg.NoEntity
		bestScore := -1.0
		maxVotes := 0
		for _, v := range ctx.TypeVotes {
			if v > maxVotes {
				maxVotes = v
			}
		}
		lo, hi := cands[0].Score, cands[0].Score
		for _, c := range cands {
			if c.Score < lo {
				lo = c.Score
			}
			if c.Score > hi {
				hi = c.Score
			}
		}
		span := hi - lo
		for _, c := range cands {
			score := 1.0
			if span > 0 {
				score = (c.Score - lo) / span
			}
			e := ctx.Graph.Entity(c.ID)
			if e == nil {
				continue
			}
			score += wSim * strutil.Similarity(strings.ToLower(ctx.Query), strings.ToLower(e.Label))
			if maxVotes > 0 {
				support := 0
				for _, t := range e.Types {
					if v := ctx.TypeVotes[t]; v > support {
						support = v
					}
				}
				score += wType * float64(support) / float64(maxVotes)
			}
			if score > bestScore {
				best, bestScore = c.ID, score
			}
		}
		return best
	})
}

// levenshteinFilterRanker drops candidates whose label similarity to the
// query is below minSim, then picks the most column-coherent survivor —
// JenTab's filter-then-select pattern.
func levenshteinFilterRanker(minSim float64) tasks.Ranker {
	inner := coherenceRanker(0.4, 0.4)
	return tasks.RankerFunc(func(ctx *tasks.Context, cands []lookup.Candidate) kg.EntityID {
		var kept []lookup.Candidate
		for _, c := range cands {
			e := ctx.Graph.Entity(c.ID)
			if e == nil {
				continue
			}
			if strutil.Similarity(strings.ToLower(ctx.Query), strings.ToLower(e.Label)) >= minSim {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			kept = cands // filter too strict: fall back to the full set
		}
		return inner.Rank(ctx, kept)
	})
}
