package systems

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/tabular"
)

func fixtures(t *testing.T) (*kg.Graph, *tabular.Dataset) {
	t.Helper()
	g, s := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 600))
	ds := tabular.GenerateDataset(g, s, tabular.DefaultDatasetConfig(tabular.STWikidata, 20))
	return g, ds
}

func TestAnnotationSystemsCleanAccuracy(t *testing.T) {
	g, ds := fixtures(t)
	for _, sys := range []*System{NewBBW(g), NewMantisTable(g), NewJenTab(g)} {
		res := sys.RunCEA(ds, sys.Original, 1)
		if res.F1() < 0.7 {
			t.Errorf("%s clean CEA F1 = %.2f, want >= 0.7", sys.Name(), res.F1())
		}
		cta := sys.RunCTA(ds, sys.Original, 1)
		if cta.F1() < 0.55 {
			t.Errorf("%s clean CTA F1 = %.2f, want >= 0.55", sys.Name(), cta.F1())
		}
	}
}

func TestSystemsDegradeUnderNoise(t *testing.T) {
	g, ds := fixtures(t)
	noisy := tabular.NewInjector(5).Apply(ds)
	for _, sys := range []*System{NewMantisTable(g), NewJenTab(g)} {
		clean := sys.RunCEA(ds, sys.Original, 1)
		dirty := sys.RunCEA(noisy, sys.Original, 1)
		if dirty.F1() > clean.F1() {
			t.Errorf("%s improved under noise: %.2f vs %.2f", sys.Name(), dirty.F1(), clean.F1())
		}
	}
}

func TestLookupServiceSwapKeepsPipeline(t *testing.T) {
	g, ds := fixtures(t)
	sys := NewMantisTable(g)
	// Swapping in a different lookup service (JenTab's cascade) must work
	// through the same pipeline — the transparency property the paper
	// claims for EmbLookup.
	other := NewJenTab(g).Original
	res := sys.RunCEA(ds, other, 1)
	if res.LookupCalls == 0 {
		t.Fatal("swap produced no lookups")
	}
	if res.F1() < 0.5 {
		t.Fatalf("swapped-service CEA F1 = %.2f", res.F1())
	}
}

func TestBBWUsesRemoteVirtualClock(t *testing.T) {
	g, ds := fixtures(t)
	sys := NewBBW(g)
	res := sys.RunCEA(ds, sys.Original, 1)
	// The SearX simulation must dominate the measured lookup time.
	if res.LookupTime < 0 {
		t.Fatal("negative lookup time")
	}
	vc, ok := sys.Original.(lookup.VirtualClock)
	if !ok {
		t.Fatal("bbw's original service should expose a virtual clock")
	}
	if vc.VirtualElapsed() <= 0 {
		t.Fatal("virtual latency not accumulated")
	}
}

func TestCascadeFallsThrough(t *testing.T) {
	g, _ := fixtures(t)
	sys := NewJenTab(g)
	cascade := sys.Original.(*CascadeService)
	// A typo defeats the exact stages and must fall through to the fuzzy
	// scan stage.
	label := g.Entities[0].Label
	typo := label[:len(label)-1] + "x"
	res := cascade.Lookup(typo, 10)
	found := false
	for _, c := range res {
		if c.ID == g.Entities[0].ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("cascade fuzzy fallback missed %q -> %q", label, typo)
	}
}

func TestDoSeRRun(t *testing.T) {
	g, ds := fixtures(t)
	sys := NewDoSeR(g)
	res := sys.Run(ds, sys.Original, 1)
	if res.F1() < 0.6 {
		t.Fatalf("DoSeR clean F1 = %.2f, want >= 0.6", res.F1())
	}
	if res.LookupCalls == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestKataraRun(t *testing.T) {
	g, ds := fixtures(t)
	sys := NewKatara(g)
	res := sys.Run(ds, sys.Original, 0.10, 42, 1)
	if res.F1() < 0.5 {
		t.Fatalf("Katara clean F1 = %.2f, want >= 0.5", res.F1())
	}
}

func TestSystemNames(t *testing.T) {
	g, _ := fixtures(t)
	names := map[string]bool{}
	names[NewBBW(g).Name()] = true
	names[NewMantisTable(g).Name()] = true
	names[NewJenTab(g).Name()] = true
	names[NewDoSeR(g).Name()] = true
	names[NewKatara(g).Name()] = true
	if len(names) != 5 {
		t.Fatalf("expected 5 distinct system names, got %v", names)
	}
}
