package tabular

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"emblookup/internal/kg"
)

// CSV import/export. Real SemTab datasets ship as CSV files with separate
// ground-truth target files; this codec keeps both in one file using an
// annotation row schema so generated benchmarks can be inspected, diffed,
// and round-tripped with ordinary tools.
//
// Layout:
//
//	row 0:  column names
//	row 1:  column ground truth — "type:<TypeID>:prop:<PropID>" or ""
//	rows 2+: cells — entity cells are "text|<EntityID>", literals plain text
//
// The cell separator '|' never occurs in generated mentions; WriteCSV
// rejects cell text containing it rather than corrupting the file.

// WriteCSV serializes one table.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := make([]string, len(t.Cols))
	truth := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
		truth[i] = fmt.Sprintf("type:%d:prop:%d", c.TruthType, c.Prop)
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	if err := cw.Write(truth); err != nil {
		return err
	}
	row := make([]string, len(t.Cols))
	for ri, cells := range t.Rows {
		for ci, cell := range cells {
			for _, r := range cell.Text {
				if r == '|' {
					return fmt.Errorf("tabular: cell (%d,%d) contains the reserved separator '|'", ri, ci)
				}
			}
			if cell.IsEntity() {
				row[ci] = fmt.Sprintf("%s|%d", cell.Text, cell.Truth)
			} else {
				row[ci] = cell.Text
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("tabular: CSV needs a name row and a truth row")
	}
	names, truths := records[0], records[1]
	if len(names) != len(truths) {
		return nil, fmt.Errorf("tabular: header rows disagree on column count")
	}
	t := &Table{Name: name}
	for i := range names {
		var typ, prop int
		if _, err := fmt.Sscanf(truths[i], "type:%d:prop:%d", &typ, &prop); err != nil {
			return nil, fmt.Errorf("tabular: column %d truth %q: %v", i, truths[i], err)
		}
		t.Cols = append(t.Cols, Column{Name: names[i], TruthType: kg.TypeID(typ), Prop: kg.PropID(prop)})
	}
	for ri, rec := range records[2:] {
		if len(rec) != len(t.Cols) {
			return nil, fmt.Errorf("tabular: row %d has %d cells, want %d", ri, len(rec), len(t.Cols))
		}
		row := make([]Cell, len(rec))
		for ci, raw := range rec {
			row[ci] = parseCell(raw)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func parseCell(raw string) Cell {
	// Split on the last '|' so entity text containing digits parses fine.
	for i := len(raw) - 1; i >= 0; i-- {
		if raw[i] == '|' {
			if id, err := strconv.Atoi(raw[i+1:]); err == nil {
				return Cell{Text: raw[:i], Truth: kg.EntityID(id)}
			}
			break
		}
	}
	return Cell{Text: raw, Truth: kg.NoEntity}
}
