package tabular

import (
	"bytes"
	"strings"
	"testing"

	"emblookup/internal/kg"
)

func TestCSVRoundTrip(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 5))
	for _, tb := range ds.Tables {
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCSV(&buf, tb.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != tb.NumRows() || got.NumCols() != tb.NumCols() {
			t.Fatalf("shape changed: %dx%d vs %dx%d", got.NumRows(), got.NumCols(), tb.NumRows(), tb.NumCols())
		}
		for i, col := range tb.Cols {
			if got.Cols[i] != col {
				t.Fatalf("column %d changed: %+v vs %+v", i, got.Cols[i], col)
			}
		}
		for r := range tb.Rows {
			for c := range tb.Rows[r] {
				if got.Rows[r][c] != tb.Rows[r][c] {
					t.Fatalf("cell (%d,%d) changed: %+v vs %+v", r, c, got.Rows[r][c], tb.Rows[r][c])
				}
			}
		}
	}
}

func TestCSVRejectsReservedSeparator(t *testing.T) {
	tb := &Table{
		Cols: []Column{{Name: "x", TruthType: kg.NoType, Prop: -1}},
		Rows: [][]Cell{{{Text: "bad|cell", Truth: 1}}},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err == nil {
		t.Fatal("reserved separator should be rejected")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("only,one,row\n"), "x"); err == nil {
		t.Fatal("missing truth row should error")
	}
	bad := "a,b\ntype:0:prop:0\n" // header rows disagree
	if _, err := ReadCSV(strings.NewReader(bad), "x"); err == nil {
		t.Fatal("mismatched header rows should error")
	}
	bad2 := "a\nnot-a-truth\nv\n"
	if _, err := ReadCSV(strings.NewReader(bad2), "x"); err == nil {
		t.Fatal("malformed truth should error")
	}
	bad3 := "a,b\ntype:0:prop:0,type:1:prop:2\nonly-one-cell\n"
	if _, err := ReadCSV(strings.NewReader(bad3), "x"); err == nil {
		t.Fatal("ragged row should error")
	}
}

func TestParseCellWithoutTruth(t *testing.T) {
	c := parseCell("1984")
	if c.IsEntity() || c.Text != "1984" {
		t.Fatalf("literal cell parsed wrong: %+v", c)
	}
	c = parseCell("Berlin|42")
	if c.Text != "Berlin" || c.Truth != 42 {
		t.Fatalf("entity cell parsed wrong: %+v", c)
	}
}
