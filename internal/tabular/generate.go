package tabular

import (
	"fmt"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
)

// DatasetProfile selects the shape of a generated benchmark dataset. The
// three profiles mirror Table I of the paper: many small tables
// (ST-Wikidata), fewer mid-size tables (ST-DBPedia), and a handful of very
// large, deliberately ambiguous tables (Tough Tables).
type DatasetProfile int

const (
	// STWikidata mimics the SemTab-2020 Wikidata benchmark shape.
	STWikidata DatasetProfile = iota
	// STDBPedia mimics the SemTab-2019 DBPedia benchmark shape.
	STDBPedia
	// ToughTables mimics the Tough Tables dataset: few, huge, noisy tables
	// built preferentially from ambiguous entity labels.
	ToughTables
)

// DatasetConfig controls benchmark generation.
type DatasetConfig struct {
	Profile DatasetProfile
	Tables  int
	Seed    uint64

	// RowsPerTable / ColsPerTable override the profile's default shape
	// when > 0.
	RowsPerTable int
	ColsPerTable int
}

// DefaultDatasetConfig returns a config with a realistic shape for the
// profile, scaled to n tables (the paper's counts, 109K/14K/180, are far
// beyond a laptop-scale reproduction; EXPERIMENTS.md records the scaling).
func DefaultDatasetConfig(p DatasetProfile, n int) DatasetConfig {
	return DatasetConfig{Profile: p, Tables: n, Seed: 7}
}

func (c DatasetConfig) shape(rng *mathx.RNG) (rows, cols int) {
	switch c.Profile {
	case STWikidata:
		rows, cols = 4+rng.Intn(6), 3+rng.Intn(3) // avg ≈ 6.6 × 4.1
	case STDBPedia:
		rows, cols = 18+rng.Intn(17), 4+rng.Intn(3) // avg ≈ 26.2 × 5.1
	default: // ToughTables
		rows, cols = 80+rng.Intn(80), 4+rng.Intn(3)
	}
	if c.RowsPerTable > 0 {
		rows = c.RowsPerTable
	}
	if c.ColsPerTable > 0 {
		cols = c.ColsPerTable
	}
	return rows, cols
}

// GenerateDataset builds an annotated benchmark dataset over g. Each table
// picks a subject type, samples entities of that type for the subject
// column, and fills the remaining columns by following the schema's
// properties from the subject (entity-valued columns keep CEA/CTA ground
// truth, literal-valued columns do not). Tough Tables preferentially samples
// entities whose labels collide with other entities.
func GenerateDataset(g *kg.Graph, s *kg.Schema, cfg DatasetConfig) *Dataset {
	rng := mathx.NewRNG(cfg.Seed)
	name := map[DatasetProfile]string{
		STWikidata:  "ST-Wikidata",
		STDBPedia:   "ST-DBPedia",
		ToughTables: "ToughTables",
	}[cfg.Profile]

	// Bucket entities by subject type once.
	byType := map[kg.TypeID][]kg.EntityID{}
	subjectTypes := []kg.TypeID{s.Person, s.City, s.Company, s.River, s.Film, s.Book}
	for i := range g.Entities {
		e := &g.Entities[i]
		for _, t := range e.Types {
			byType[t] = append(byType[t], e.ID)
		}
	}
	// For Tough Tables: the subset of entities whose label is shared.
	ambiguous := ambiguousEntities(g)

	ds := &Dataset{Name: name, Graph: g}
	for ti := 0; ti < cfg.Tables; ti++ {
		st := subjectTypes[rng.Intn(len(subjectTypes))]
		pool := byType[st]
		if len(pool) == 0 {
			continue
		}
		rows, cols := cfg.shape(rng)
		t := buildTable(g, s, st, pool, ambiguous, rows, cols, cfg.Profile == ToughTables, rng)
		t.Name = fmt.Sprintf("%s-%04d", name, ti)
		ds.Tables = append(ds.Tables, t)
	}
	return ds
}

// columnSpec describes a candidate non-subject column for a subject type.
type columnSpec struct {
	prop    kg.PropID
	colType kg.TypeID // kg.NoType for literal columns
	name    string
}

func columnSpecs(s *kg.Schema, subject kg.TypeID) []columnSpec {
	switch subject {
	case s.Person:
		return []columnSpec{
			{s.BornIn, s.City, "birthplace"},
			{s.CitizenOf, s.Country, "country"},
			{s.WorksFor, s.Company, "employer"},
			{s.StudiedAt, s.University, "almaMater"},
		}
	case s.City:
		return []columnSpec{
			{s.LocatedIn, s.Country, "country"},
			{s.Population, kg.NoType, "population"},
		}
	case s.Company:
		return []columnSpec{
			{s.HeadquarteredIn, s.City, "headquarters"},
			{s.FoundedYear, kg.NoType, "founded"},
		}
	case s.River:
		return []columnSpec{
			{s.FlowsThrough, s.Country, "country"},
		}
	case s.Film:
		return []columnSpec{
			{s.DirectedBy, s.Person, "director"},
		}
	case s.Book:
		return []columnSpec{
			{s.AuthoredBy, s.Person, "author"},
		}
	}
	return nil
}

func buildTable(g *kg.Graph, s *kg.Schema, subject kg.TypeID, pool, ambiguous []kg.EntityID,
	rows, cols int, preferAmbiguous bool, rng *mathx.RNG) *Table {

	specs := columnSpecs(s, subject)
	nExtra := cols - 1
	if nExtra > len(specs) {
		nExtra = len(specs)
	}
	t := &Table{}
	t.Cols = append(t.Cols, Column{Name: g.TypeName(subject), TruthType: subject, Prop: kg.PropID(-1)})
	for i := 0; i < nExtra; i++ {
		sp := specs[i]
		t.Cols = append(t.Cols, Column{Name: sp.name, TruthType: sp.colType, Prop: sp.prop})
	}

	for r := 0; r < rows; r++ {
		var subj kg.EntityID
		if preferAmbiguous && len(ambiguous) > 0 && rng.Bool(0.5) {
			subj = ambiguous[rng.Intn(len(ambiguous))]
			if !g.HasType(subj, subject) {
				subj = pool[rng.Zipf(len(pool), 1.05)]
			}
		} else {
			subj = pool[rng.Zipf(len(pool), 1.05)]
		}
		row := make([]Cell, 0, len(t.Cols))
		row = append(row, Cell{Text: g.Label(subj), Truth: subj})
		facts := g.FactsFrom(subj)
		for i := 0; i < nExtra; i++ {
			sp := specs[i]
			cell := Cell{Truth: kg.NoEntity}
			for _, f := range facts {
				if f.Prop != sp.prop {
					continue
				}
				if f.Object != kg.NoEntity {
					cell = Cell{Text: g.Label(f.Object), Truth: f.Object}
				} else {
					cell = Cell{Text: f.Literal, Truth: kg.NoEntity}
				}
				break
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ambiguousEntities returns the entities whose lowercased label is shared
// with at least one other entity.
func ambiguousEntities(g *kg.Graph) []kg.EntityID {
	var out []kg.EntityID
	for i := range g.Entities {
		e := &g.Entities[i]
		if len(g.ExactMatch(e.Label)) > 1 {
			out = append(out, e.ID)
		}
	}
	return out
}
