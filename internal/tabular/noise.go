package tabular

import (
	"strings"

	"emblookup/internal/mathx"
)

// NoiseKind enumerates the paper's injected error classes: "common
// misspellings such as dropping/inserting one or more letters, transposing
// letters, swapping the tokens, abbreviations, and so on" (Section IV).
type NoiseKind int

const (
	// DropLetters removes one or two characters.
	DropLetters NoiseKind = iota
	// InsertLetters inserts one or two unrelated characters.
	InsertLetters
	// TransposeLetters swaps two adjacent characters.
	TransposeLetters
	// SwapTokens reverses the order of two word tokens.
	SwapTokens
	// AbbreviateToken shortens the string to an initialism.
	AbbreviateToken
	numNoiseKinds
)

// String names the noise class.
func (k NoiseKind) String() string {
	switch k {
	case DropLetters:
		return "drop-letters"
	case InsertLetters:
		return "insert-letters"
	case TransposeLetters:
		return "transpose-letters"
	case SwapTokens:
		return "swap-tokens"
	case AbbreviateToken:
		return "abbreviate"
	default:
		return "unknown"
	}
}

// Injector applies cell-level noise to a fraction of entity cells. The zero
// value uses all noise kinds; restrict Kinds to study one class.
type Injector struct {
	// Fraction of entity cells to corrupt; the paper uses 0.10.
	Fraction float64
	// Kinds restricts the error classes. Empty means all.
	Kinds []NoiseKind
	// Seed drives the deterministic corruption choices.
	Seed uint64
}

// NewInjector returns an injector matching the paper's default setup: 10% of
// cells, all error classes.
func NewInjector(seed uint64) *Injector {
	return &Injector{Fraction: 0.10, Seed: seed}
}

// Apply returns a corrupted deep copy of ds. Ground-truth annotations are
// preserved: the whole point of the experiment is looking up noisy mentions
// against clean truth.
func (in *Injector) Apply(ds *Dataset) *Dataset {
	rng := mathx.NewRNG(in.Seed)
	out := ds.Clone()
	out.Name = ds.Name + "+noise"
	for _, t := range out.Tables {
		for i := range t.Rows {
			for j := range t.Rows[i] {
				c := &t.Rows[i][j]
				if !c.IsEntity() || !rng.Bool(in.Fraction) {
					continue
				}
				c.Text = in.corrupt(c.Text, rng)
			}
		}
	}
	return out
}

// Corrupt applies one randomly chosen error class to s (exported for query
// workload generation in the lookup-service comparison).
func (in *Injector) Corrupt(s string, rng *mathx.RNG) string {
	return in.corrupt(s, rng)
}

func (in *Injector) corrupt(s string, rng *mathx.RNG) string {
	kinds := in.Kinds
	if len(kinds) == 0 {
		kinds = []NoiseKind{DropLetters, InsertLetters, TransposeLetters, SwapTokens, AbbreviateToken}
	}
	k := kinds[rng.Intn(len(kinds))]
	out := ApplyNoise(s, k, rng)
	if out == s && len(kinds) > 1 {
		// The chosen class was a no-op on this string (e.g. SwapTokens on a
		// single token); fall back to a letter-level edit.
		out = ApplyNoise(s, TransposeLetters, rng)
	}
	return out
}

// ApplyNoise corrupts s with a single error class. Strings too short for
// the requested class are returned unchanged (SwapTokens) or minimally
// perturbed.
func ApplyNoise(s string, k NoiseKind, rng *mathx.RNG) string {
	r := []rune(s)
	switch k {
	case DropLetters:
		n := 1
		if len(r) > 6 && rng.Bool(0.3) {
			n = 2
		}
		for i := 0; i < n && len(r) > 1; i++ {
			p := rng.Intn(len(r))
			r = append(r[:p], r[p+1:]...)
		}
		return string(r)
	case InsertLetters:
		n := 1
		if len(r) > 6 && rng.Bool(0.3) {
			n = 2
		}
		letters := []rune("abcdefghijklmnopqrstuvwxyz")
		for i := 0; i < n; i++ {
			p := rng.Intn(len(r) + 1)
			c := letters[rng.Intn(len(letters))]
			r = append(r[:p], append([]rune{c}, r[p:]...)...)
		}
		return string(r)
	case TransposeLetters:
		if len(r) < 2 {
			return s + "x"
		}
		p := rng.Intn(len(r) - 1)
		r[p], r[p+1] = r[p+1], r[p]
		return string(r)
	case SwapTokens:
		toks := strings.Fields(s)
		if len(toks) < 2 {
			return s
		}
		i := rng.Intn(len(toks) - 1)
		toks[i], toks[i+1] = toks[i+1], toks[i]
		return strings.Join(toks, " ")
	case AbbreviateToken:
		toks := strings.Fields(s)
		if len(toks) < 2 {
			// Single token: truncate instead.
			if len(r) > 4 {
				return string(r[:3]) + "."
			}
			return s
		}
		// Abbreviate one token to its initial.
		i := rng.Intn(len(toks))
		tr := []rune(toks[i])
		toks[i] = strings.ToUpper(string(tr[0])) + "."
		return strings.Join(toks, " ")
	}
	return s
}

// SubstituteAliases returns a copy of ds where every entity cell whose
// ground-truth entity has aliases is replaced by one chosen uniformly at
// random — the semantic-lookup workload of Table VI. Cells without aliases
// keep their original text, exactly as the paper specifies.
func SubstituteAliases(ds *Dataset, seed uint64) *Dataset {
	rng := mathx.NewRNG(seed)
	out := ds.Clone()
	out.Name = ds.Name + "+aliases"
	for _, t := range out.Tables {
		for i := range t.Rows {
			for j := range t.Rows[i] {
				c := &t.Rows[i][j]
				if !c.IsEntity() {
					continue
				}
				e := ds.Graph.Entity(c.Truth)
				if e == nil || len(e.Aliases) == 0 {
					continue
				}
				c.Text = e.Aliases[rng.Intn(len(e.Aliases))]
			}
		}
	}
	return out
}
