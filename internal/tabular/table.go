// Package tabular implements the tabular-data substrate of the evaluation:
// tables whose cells carry ground-truth knowledge-graph annotations, a
// generator that produces SemTab-style benchmark datasets (the ST-Wikidata,
// ST-DBPedia, and Tough Tables profiles of Table I), the error-injection
// machinery used by the paper's noise experiments (Table IV), and the alias
// substitution used by the semantic-lookup experiment (Table VI).
package tabular

import (
	"fmt"

	"emblookup/internal/kg"
)

// Cell is a single table cell. Entity cells carry the ground-truth entity ID
// used to score the Cell Entity Annotation task; literal cells have Truth ==
// kg.NoEntity.
type Cell struct {
	Text  string
	Truth kg.EntityID
}

// IsEntity reports whether the cell refers to a KG entity (and therefore
// participates in the CEA task).
func (c Cell) IsEntity() bool { return c.Truth != kg.NoEntity }

// Column carries the per-column ground truth for Column Type Annotation. A
// literal column has TruthType == kg.NoType.
type Column struct {
	Name      string
	TruthType kg.TypeID
	Prop      kg.PropID // relation from the subject column, kg.PropID(-1) if none
}

// Table is an m×n relational table with annotation ground truth. Rows all
// have len == len(Cols). Column 0 is the subject column: the entity each row
// is about.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Cell
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Cols) }

// EntityCells calls fn for every entity cell with its row and column index.
func (t *Table) EntityCells(fn func(row, col int, c Cell)) {
	for i, r := range t.Rows {
		for j, c := range r {
			if c.IsEntity() {
				fn(i, j, c)
			}
		}
	}
}

// Clone returns a deep copy of t (cells and columns are copied).
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Cols: append([]Column(nil), t.Cols...)}
	out.Rows = make([][]Cell, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = append([]Cell(nil), r...)
	}
	return out
}

// Dataset is a named collection of annotated tables over one knowledge
// graph.
type Dataset struct {
	Name   string
	Graph  *kg.Graph
	Tables []*Table
}

// Clone deep-copies the dataset's tables (the graph is shared).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Graph: d.Graph, Tables: make([]*Table, len(d.Tables))}
	for i, t := range d.Tables {
		out.Tables[i] = t.Clone()
	}
	return out
}

// Stats summarizes the dataset in the shape of the paper's Table I.
type Stats struct {
	Tables        int
	AvgRows       float64
	AvgCols       float64
	CellsToLabel  int // entity cells with ground truth (the "#Cells" row)
	EntityColumns int // columns with a CTA ground truth
}

// ComputeStats returns Table I statistics for d.
func (d *Dataset) ComputeStats() Stats {
	var s Stats
	s.Tables = len(d.Tables)
	totalRows, totalCols := 0, 0
	for _, t := range d.Tables {
		totalRows += t.NumRows()
		totalCols += t.NumCols()
		for _, c := range t.Cols {
			if c.TruthType != kg.NoType {
				s.EntityColumns++
			}
		}
		t.EntityCells(func(_, _ int, _ Cell) { s.CellsToLabel++ })
	}
	if s.Tables > 0 {
		s.AvgRows = float64(totalRows) / float64(s.Tables)
		s.AvgCols = float64(totalCols) / float64(s.Tables)
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("#Tables=%d avgRows=%.1f avgCols=%.1f #Cells=%d #EntityCols=%d",
		s.Tables, s.AvgRows, s.AvgCols, s.CellsToLabel, s.EntityColumns)
}
