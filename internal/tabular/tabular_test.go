package tabular

import (
	"strings"
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/strutil"
)

func testGraph(t *testing.T) (*kg.Graph, *kg.Schema) {
	t.Helper()
	g, s := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 800))
	return g, s
}

func TestGenerateDatasetGroundTruth(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 30))
	if len(ds.Tables) == 0 {
		t.Fatal("no tables generated")
	}
	checked := 0
	for _, tb := range ds.Tables {
		tb.EntityCells(func(_, _ int, c Cell) {
			e := g.Entity(c.Truth)
			if e == nil {
				t.Fatalf("cell %q has invalid truth", c.Text)
			}
			// The clean dataset's cell text must be the entity's label.
			if c.Text != e.Label {
				t.Fatalf("clean cell text %q != label %q", c.Text, e.Label)
			}
			checked++
		})
	}
	if checked == 0 {
		t.Fatal("no entity cells generated")
	}
}

func TestGenerateDatasetColumnTypes(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 30))
	for _, tb := range ds.Tables {
		for j, col := range tb.Cols {
			if col.TruthType == kg.NoType {
				continue
			}
			for _, row := range tb.Rows {
				c := row[j]
				if !c.IsEntity() {
					continue // missing relation for that row
				}
				if !g.HasType(c.Truth, col.TruthType) {
					t.Fatalf("cell %q in column %q does not have type %s",
						c.Text, col.Name, g.TypeName(col.TruthType))
				}
			}
		}
	}
}

func TestDatasetProfilesShape(t *testing.T) {
	g, s := testGraph(t)
	wiki := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 50)).ComputeStats()
	dbp := GenerateDataset(g, s, DefaultDatasetConfig(STDBPedia, 50)).ComputeStats()
	tough := GenerateDataset(g, s, DefaultDatasetConfig(ToughTables, 10)).ComputeStats()
	if wiki.AvgRows >= dbp.AvgRows {
		t.Fatalf("ST-Wikidata rows (%.1f) should be fewer than ST-DBPedia (%.1f)", wiki.AvgRows, dbp.AvgRows)
	}
	if dbp.AvgRows >= tough.AvgRows {
		t.Fatalf("ST-DBPedia rows (%.1f) should be fewer than ToughTables (%.1f)", dbp.AvgRows, tough.AvgRows)
	}
}

func TestDatasetDeterministic(t *testing.T) {
	g, s := testGraph(t)
	cfg := DefaultDatasetConfig(STWikidata, 20)
	a := GenerateDataset(g, s, cfg)
	b := GenerateDataset(g, s, cfg)
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range a.Tables {
		if a.Tables[i].NumRows() != b.Tables[i].NumRows() {
			t.Fatal("row counts differ")
		}
		for r := range a.Tables[i].Rows {
			for c := range a.Tables[i].Rows[r] {
				if a.Tables[i].Rows[r][c] != b.Tables[i].Rows[r][c] {
					t.Fatal("cells differ between identical configs")
				}
			}
		}
	}
}

func TestInjectorCorruptsApproxFraction(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STDBPedia, 60))
	in := NewInjector(99)
	noisy := in.Apply(ds)

	total, changed := 0, 0
	for ti, tb := range ds.Tables {
		for r := range tb.Rows {
			for c := range tb.Rows[r] {
				if !tb.Rows[r][c].IsEntity() {
					continue
				}
				total++
				if noisy.Tables[ti].Rows[r][c].Text != tb.Rows[r][c].Text {
					changed++
				}
			}
		}
	}
	frac := float64(changed) / float64(total)
	if frac < 0.05 || frac > 0.16 {
		t.Fatalf("corrupted fraction %.3f, want around 0.10", frac)
	}
}

func TestInjectorPreservesTruth(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 20))
	noisy := NewInjector(3).Apply(ds)
	for ti, tb := range ds.Tables {
		for r := range tb.Rows {
			for c := range tb.Rows[r] {
				if noisy.Tables[ti].Rows[r][c].Truth != tb.Rows[r][c].Truth {
					t.Fatal("noise must not alter ground truth")
				}
			}
		}
	}
}

func TestApplyNoiseClasses(t *testing.T) {
	rng := mathx.NewRNG(1)
	s := "Federal Republic"
	if got := ApplyNoise(s, DropLetters, rng); len(got) >= len(s) {
		t.Fatalf("DropLetters did not shorten: %q", got)
	}
	if got := ApplyNoise(s, InsertLetters, rng); len(got) <= len(s) {
		t.Fatalf("InsertLetters did not lengthen: %q", got)
	}
	if got := ApplyNoise(s, TransposeLetters, rng); got == s || len(got) != len(s) {
		t.Fatalf("TransposeLetters wrong: %q", got)
	}
	if got := ApplyNoise(s, SwapTokens, rng); got != "Republic Federal" {
		t.Fatalf("SwapTokens = %q", got)
	}
	got := ApplyNoise(s, AbbreviateToken, rng)
	if got == s || !strings.Contains(got, ".") {
		t.Fatalf("AbbreviateToken = %q", got)
	}
	// Single-token corner cases.
	if got := ApplyNoise("ab", SwapTokens, rng); got != "ab" {
		t.Fatalf("SwapTokens single token should no-op, got %q", got)
	}
	if got := ApplyNoise("a", TransposeLetters, rng); got == "a" {
		t.Fatalf("TransposeLetters on 1 rune should still perturb")
	}
}

func TestApplyNoiseStaysClose(t *testing.T) {
	// Letter-level noise must stay within small edit distance of the
	// original — that is what makes it recoverable by fuzzy lookup.
	rng := mathx.NewRNG(5)
	for i := 0; i < 200; i++ {
		orig := "Bramonia Ridge"
		for _, k := range []NoiseKind{DropLetters, InsertLetters, TransposeLetters} {
			noisy := ApplyNoise(orig, k, rng)
			if d := strutil.Levenshtein(orig, noisy); d > 3 {
				t.Fatalf("%v produced distance %d: %q", k, d, noisy)
			}
		}
	}
}

func TestSubstituteAliases(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 30))
	sub := SubstituteAliases(ds, 11)
	replaced, total := 0, 0
	for ti, tb := range ds.Tables {
		for r := range tb.Rows {
			for c := range tb.Rows[r] {
				orig := tb.Rows[r][c]
				if !orig.IsEntity() {
					continue
				}
				total++
				got := sub.Tables[ti].Rows[r][c]
				if got.Truth != orig.Truth {
					t.Fatal("alias substitution changed truth")
				}
				if got.Text != orig.Text {
					replaced++
					// The substituted text must be one of the entity's aliases.
					e := g.Entity(orig.Truth)
					found := false
					for _, a := range e.Aliases {
						if a == got.Text {
							found = true
						}
					}
					if !found {
						t.Fatalf("substituted text %q is not an alias of %q", got.Text, e.Label)
					}
				}
			}
		}
	}
	if replaced == 0 {
		t.Fatal("no cells were alias-substituted")
	}
	if float64(replaced)/float64(total) < 0.5 {
		t.Fatalf("too few substitutions: %d/%d", replaced, total)
	}
}

func TestSubstituteAliasesVariantsDiffer(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 10))
	a := SubstituteAliases(ds, 1)
	b := SubstituteAliases(ds, 2)
	diff := false
	for ti := range a.Tables {
		for r := range a.Tables[ti].Rows {
			for c := range a.Tables[ti].Rows[r] {
				if a.Tables[ti].Rows[r][c].Text != b.Tables[ti].Rows[r][c].Text {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should give different alias variants")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 5))
	cp := ds.Clone()
	cp.Tables[0].Rows[0][0].Text = "MUTATED"
	if ds.Tables[0].Rows[0][0].Text == "MUTATED" {
		t.Fatal("Clone shares row storage")
	}
}

func TestComputeStats(t *testing.T) {
	g, s := testGraph(t)
	ds := GenerateDataset(g, s, DefaultDatasetConfig(STWikidata, 25))
	st := ds.ComputeStats()
	if st.Tables != len(ds.Tables) {
		t.Fatal("table count mismatch")
	}
	if st.CellsToLabel == 0 || st.AvgRows == 0 || st.AvgCols == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if !strings.Contains(st.String(), "#Tables") {
		t.Fatalf("Stats.String = %q", st.String())
	}
}
