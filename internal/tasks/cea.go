package tasks

import (
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/tabular"
)

// CEAConfig controls the cell-entity-annotation pipeline.
type CEAConfig struct {
	// K is the candidate budget per lookup (the paper's applications use
	// 20–100).
	K int
	// Parallelism for the lookup pass (1 = CPU mode, ≤0 = all cores).
	Parallelism int
}

// DefaultCEAConfig uses k=20 sequential lookups.
func DefaultCEAConfig() CEAConfig { return CEAConfig{K: 20, Parallelism: 1} }

// CEA runs cell entity annotation over ds: candidate generation through
// svc, column-type voting, then the system-specific ranker picks one entity
// per cell. Accuracy is scored against the dataset's ground truth.
func CEA(ds *tabular.Dataset, svc lookup.Service, ranker Ranker, cfg CEAConfig) *Result {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	cands, lookupTime, calls := lookupAll(ds, svc, cfg.K, cfg.Parallelism)
	votes := typeVotes(ds, cands)

	res := &Result{
		Predictions: make(map[CellRef]kg.EntityID, len(cands)),
		LookupTime:  lookupTime,
		LookupCalls: calls,
	}
	// First pass: provisional assignment (top candidate) to give rankers
	// row context.
	provisional := make(map[CellRef]kg.EntityID, len(cands))
	for ref, cs := range cands {
		provisional[ref] = TopCandidate.Rank(nil, cs)
	}
	for ref, cs := range cands {
		tb := ds.Tables[ref.Table]
		rowEnts := make([]kg.EntityID, tb.NumCols())
		for c := 0; c < tb.NumCols(); c++ {
			rowEnts[c] = kg.NoEntity
			if c == ref.Col {
				continue
			}
			if id, ok := provisional[CellRef{Table: ref.Table, Row: ref.Row, Col: c}]; ok {
				rowEnts[c] = id
			}
		}
		ctx := &Context{
			Graph:       ds.Graph,
			Table:       tb,
			Row:         ref.Row,
			Col:         ref.Col,
			Query:       tb.Rows[ref.Row][ref.Col].Text,
			TypeVotes:   votes[[2]int{ref.Table, ref.Col}],
			RowEntities: rowEnts,
		}
		pred := ranker.Rank(ctx, cs)
		res.Predictions[ref] = pred
		truth := tb.Rows[ref.Row][ref.Col].Truth
		res.Confusion.Record(pred != kg.NoEntity, pred == truth)
	}
	return res
}
