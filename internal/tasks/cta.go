package tasks

import (
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/metrics"
	"emblookup/internal/tabular"
)

// CTAResult carries column-type predictions and accuracy.
type CTAResult struct {
	// Predictions maps (table, column) to the predicted type.
	Predictions map[[2]int]kg.TypeID
	Confusion   metrics.Confusion
	LookupTime  time.Duration
	LookupCalls int
}

// F1 is shorthand for the run's F-score.
func (r *CTAResult) F1() float64 { return r.Confusion.F1() }

// CTA runs column type annotation: every entity cell's candidates vote for
// their types, and each column is assigned the most specific type with
// support from a majority of its cells (the standard SemTab CTA strategy).
func CTA(ds *tabular.Dataset, svc lookup.Service, cfg CEAConfig) *CTAResult {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	cands, lookupTime, calls := lookupAll(ds, svc, cfg.K, cfg.Parallelism)

	// Per column: per-cell type sets from the top candidates.
	type colKey = [2]int
	cellTypes := make(map[colKey][]map[kg.TypeID]bool)
	for ref, cs := range cands {
		key := colKey{ref.Table, ref.Col}
		types := make(map[kg.TypeID]bool)
		limit := 3
		for i, c := range cs {
			if i >= limit {
				break
			}
			e := ds.Graph.Entity(c.ID)
			if e == nil {
				continue
			}
			for _, t := range e.Types {
				// Walk up the hierarchy so general types also get support.
				for cur := t; cur != kg.NoType; cur = ds.Graph.Types[cur].Parent {
					types[cur] = true
					if ds.Graph.Types[cur].Parent == cur {
						break
					}
				}
			}
		}
		cellTypes[key] = append(cellTypes[key], types)
	}

	res := &CTAResult{
		Predictions: make(map[[2]int]kg.TypeID),
		LookupTime:  lookupTime,
		LookupCalls: calls,
	}
	for key, perCell := range cellTypes {
		support := make(map[kg.TypeID]int)
		for _, ts := range perCell {
			for t := range ts {
				support[t]++
			}
		}
		// Most specific type supported by a majority of cells; ties break
		// by support, then by type id, so the prediction is deterministic.
		need := (len(perCell) + 1) / 2
		best := kg.NoType
		bestDepth, bestSupport := -1, -1
		for t, s := range support {
			if s < need {
				continue
			}
			d := ds.Graph.TypeDepth(t)
			if d > bestDepth ||
				(d == bestDepth && s > bestSupport) ||
				(d == bestDepth && s == bestSupport && t < best) {
				best, bestDepth, bestSupport = t, d, s
			}
		}
		res.Predictions[key] = best
		truth := ds.Tables[key[0]].Cols[key[1]].TruthType
		if truth == kg.NoType {
			continue // literal columns are not scored
		}
		res.Confusion.Record(best != kg.NoType, best == truth)
	}
	// Columns whose cells produced no candidates at all still count as
	// misses.
	for ti, tb := range ds.Tables {
		for ci, col := range tb.Cols {
			if col.TruthType == kg.NoType {
				continue
			}
			if _, ok := cellTypes[[2]int{ti, ci}]; !ok {
				hasEntityCell := false
				for _, row := range tb.Rows {
					if row[ci].IsEntity() {
						hasEntityCell = true
						break
					}
				}
				if hasEntityCell {
					res.Confusion.Record(false, false)
				}
			}
		}
	}
	return res
}
