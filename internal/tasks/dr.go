package tasks

import (
	"sort"
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/metrics"
	"emblookup/internal/tabular"
)

// MaskedCell records one cell blanked for the repair task, with its truth.
type MaskedCell struct {
	Ref       CellRef
	TruthText string
	TruthID   kg.EntityID
}

// MaskCells blanks `fraction` of the non-subject entity cells of a copy of
// ds (the paper's DR setup replaces 10% of cells with missing values) and
// returns the masked dataset together with the hidden truths.
func MaskCells(ds *tabular.Dataset, fraction float64, seed uint64) (*tabular.Dataset, []MaskedCell) {
	rng := mathx.NewRNG(seed)
	out := ds.Clone()
	out.Name = ds.Name + "+masked"
	var masked []MaskedCell
	for ti, tb := range out.Tables {
		for ri := range tb.Rows {
			for ci := 1; ci < len(tb.Rows[ri]); ci++ { // never mask the subject column
				c := &tb.Rows[ri][ci]
				if !c.IsEntity() || !rng.Bool(fraction) {
					continue
				}
				masked = append(masked, MaskedCell{
					Ref:       CellRef{Table: ti, Row: ri, Col: ci},
					TruthText: c.Text,
					TruthID:   c.Truth,
				})
				c.Text = ""
				c.Truth = kg.NoEntity
			}
		}
	}
	return out, masked
}

// DRConfig controls data repair.
type DRConfig struct {
	// K is the candidate budget for the subject lookup.
	K int
	// Parallelism for the lookup pass.
	Parallelism int
}

// DefaultDRConfig uses k=20 sequential lookups.
func DefaultDRConfig() DRConfig { return DRConfig{K: 20, Parallelism: 1} }

// DRResult carries imputations and accuracy.
type DRResult struct {
	Imputed     map[CellRef]kg.EntityID
	Confusion   metrics.Confusion
	LookupTime  time.Duration
	LookupCalls int
}

// F1 is shorthand for the run's F-score.
func (r *DRResult) F1() float64 { return r.Confusion.F1() }

// Repair imputes the masked cells Katara-style: the row's subject cell is
// looked up through svc, candidate subjects are validated against the row's
// surviving cells (a candidate explaining more of the row wins), and the
// missing value is then read off the knowledge graph by following the
// masked column's relation from the chosen subject.
func Repair(masked *tabular.Dataset, cells []MaskedCell, svc lookup.Service, cfg DRConfig) *DRResult {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	// One lookup per distinct row that needs repair.
	type rowKey struct{ table, row int }
	rowsNeeded := make(map[rowKey]bool)
	for _, mc := range cells {
		rowsNeeded[rowKey{mc.Ref.Table, mc.Ref.Row}] = true
	}
	var keys []rowKey
	var queries []string
	for k := range rowsNeeded {
		keys = append(keys, k)
	}
	// Deterministic order.
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].table != keys[b].table {
			return keys[a].table < keys[b].table
		}
		return keys[a].row < keys[b].row
	})
	for _, k := range keys {
		queries = append(queries, masked.Tables[k.table].Rows[k.row][0].Text)
	}
	if vc, ok := svc.(lookup.VirtualClock); ok {
		vc.ResetVirtual()
	}
	start := time.Now()
	candLists := lookup.Bulk(svc, queries, cfg.K, cfg.Parallelism)
	elapsed := lookup.TotalDuration(svc, time.Since(start))

	subjects := make(map[rowKey]kg.EntityID, len(keys))
	for i, k := range keys {
		subjects[k] = chooseSubject(masked, k.table, k.row, candLists[i])
	}

	res := &DRResult{
		Imputed:     make(map[CellRef]kg.EntityID, len(cells)),
		LookupTime:  elapsed,
		LookupCalls: len(queries),
	}
	for _, mc := range cells {
		tb := masked.Tables[mc.Ref.Table]
		prop := tb.Cols[mc.Ref.Col].Prop
		subj := subjects[rowKey{mc.Ref.Table, mc.Ref.Row}]
		pred := kg.NoEntity
		if subj != kg.NoEntity && prop >= 0 {
			for _, f := range masked.Graph.FactsFrom(subj) {
				if f.Prop == prop && f.Object != kg.NoEntity {
					pred = f.Object
					break
				}
			}
		}
		res.Imputed[mc.Ref] = pred
		res.Confusion.Record(pred != kg.NoEntity, pred == mc.TruthID)
	}
	return res
}

// chooseSubject validates subject candidates against the row's surviving
// cells: the candidate whose facts explain the most row values wins.
func chooseSubject(ds *tabular.Dataset, ti, ri int, cands []lookup.Candidate) kg.EntityID {
	tb := ds.Tables[ti]
	best := kg.NoEntity
	bestScore := -1.0
	for rank, c := range cands {
		score := 1.0 / float64(rank+1)
		facts := ds.Graph.FactsFrom(c.ID)
		for ci := 1; ci < tb.NumCols(); ci++ {
			cell := tb.Rows[ri][ci]
			if cell.Text == "" {
				continue
			}
			prop := tb.Cols[ci].Prop
			for _, f := range facts {
				if f.Prop != prop {
					continue
				}
				if f.Object != kg.NoEntity && f.Object == cell.Truth {
					score += 2
				} else if f.Object == kg.NoEntity && f.Literal == cell.Text {
					score += 2
				}
			}
		}
		if score > bestScore {
			best, bestScore = c.ID, score
		}
	}
	return best
}
