package tasks

import (
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/metrics"
)

// EAConfig controls collective entity disambiguation.
type EAConfig struct {
	// K is the candidate budget per mention.
	K int
	// Damping is the restart probability of the coherence walk (DoSeR uses
	// a personalized-PageRank-style propagation).
	Damping float64
	// Iterations of score propagation.
	Iterations int
	// Parallelism for the lookup pass.
	Parallelism int
}

// DefaultEAConfig mirrors DoSeR's usual settings.
func DefaultEAConfig() EAConfig {
	return EAConfig{K: 20, Damping: 0.85, Iterations: 10, Parallelism: 1}
}

// EAResult carries the disambiguation output for one mention list.
type EAResult struct {
	Assignments []kg.EntityID
	Confusion   metrics.Confusion
	LookupTime  time.Duration
	LookupCalls int
}

// F1 is shorthand for the run's F-score.
func (r *EAResult) F1() float64 { return r.Confusion.F1() }

// Disambiguate assigns one entity to each mention in a list, collectively:
// candidates come from svc, then scores propagate over the knowledge-graph
// links between candidates of different mentions (coherent candidate sets
// reinforce each other), in the style of DoSeR's PageRank disambiguation.
// truths may be nil when ground truth is unknown; otherwise it scores the
// assignment.
func Disambiguate(g *kg.Graph, svc lookup.Service, mentions []string, truths []kg.EntityID, cfg EAConfig) *EAResult {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if vc, ok := svc.(lookup.VirtualClock); ok {
		vc.ResetVirtual()
	}
	start := time.Now()
	candLists := lookup.Bulk(svc, mentions, cfg.K, cfg.Parallelism)
	elapsed := lookup.TotalDuration(svc, time.Since(start))

	// Node set: (mention index, candidate). Prior = normalized lookup rank.
	type node struct {
		mention int
		id      kg.EntityID
	}
	var nodes []node
	prior := make([]float64, 0)
	byEntity := make(map[kg.EntityID][]int) // entity -> node indexes
	for mi, cands := range candLists {
		for rank, c := range cands {
			nodes = append(nodes, node{mention: mi, id: c.ID})
			prior = append(prior, 1.0/float64(rank+1))
			byEntity[c.ID] = append(byEntity[c.ID], len(nodes)-1)
		}
	}
	// Normalize priors per mention.
	sumPerMention := make([]float64, len(mentions))
	for i, n := range nodes {
		sumPerMention[n.mention] += prior[i]
	}
	for i, n := range nodes {
		if s := sumPerMention[n.mention]; s > 0 {
			prior[i] /= s
		}
	}

	// Edges: KG links between candidates of *different* mentions.
	adj := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, nb := range g.Neighbors(n.id) {
			for _, j := range byEntity[nb] {
				if nodes[j].mention != n.mention {
					adj[i] = append(adj[i], j)
				}
			}
		}
	}

	// Personalized-PageRank-style propagation.
	score := append([]float64(nil), prior...)
	next := make([]float64, len(nodes))
	for it := 0; it < cfg.Iterations; it++ {
		for i := range next {
			next[i] = (1 - cfg.Damping) * prior[i]
		}
		for i := range nodes {
			if len(adj[i]) == 0 || score[i] == 0 {
				continue
			}
			share := cfg.Damping * score[i] / float64(len(adj[i]))
			for _, j := range adj[i] {
				next[j] += share
			}
		}
		score, next = next, score
	}

	res := &EAResult{
		Assignments: make([]kg.EntityID, len(mentions)),
		LookupTime:  elapsed,
		LookupCalls: len(mentions),
	}
	for mi := range mentions {
		res.Assignments[mi] = kg.NoEntity
	}
	best := make([]float64, len(mentions))
	for i, n := range nodes {
		if res.Assignments[n.mention] == kg.NoEntity || score[i] > best[n.mention] {
			res.Assignments[n.mention] = n.id
			best[n.mention] = score[i]
		}
	}
	if truths != nil {
		for mi, pred := range res.Assignments {
			res.Confusion.Record(pred != kg.NoEntity, pred == truths[mi])
		}
	}
	return res
}
