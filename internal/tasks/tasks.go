// Package tasks implements the four semantic-annotation tasks of Section II
// on top of any lookup.Service: Cell Entity Annotation (CEA), Column Type
// Annotation (CTA), collective Entity Disambiguation (EA), and Data Repair
// (DR). Each pipeline separates the lookup calls (instrumented, since the
// paper's speedup numbers measure exactly that component) from the
// system-specific candidate post-processing, so swapping the lookup service
// is transparent — the experimental design of Section IV.
package tasks

import (
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/metrics"
	"emblookup/internal/tabular"
)

// CellRef addresses one cell of one table in a dataset.
type CellRef struct {
	Table, Row, Col int
}

// Context is what a ranker sees when scoring candidates for a cell: the
// graph, the table, the cell position, the query text, and the column-type
// votes accumulated from every cell's candidates in the same column.
type Context struct {
	Graph     *kg.Graph
	Table     *tabular.Table
	Row, Col  int
	Query     string
	TypeVotes map[kg.TypeID]int
	// RowEntities are the currently assigned entities of the other cells
	// in the same row (kg.NoEntity when unassigned).
	RowEntities []kg.EntityID
}

// Ranker picks the final entity for a cell from its candidate set. A
// return of kg.NoEntity abstains.
type Ranker interface {
	Rank(ctx *Context, cands []lookup.Candidate) kg.EntityID
}

// RankerFunc adapts a function to the Ranker interface.
type RankerFunc func(ctx *Context, cands []lookup.Candidate) kg.EntityID

// Rank implements Ranker.
func (f RankerFunc) Rank(ctx *Context, cands []lookup.Candidate) kg.EntityID {
	return f(ctx, cands)
}

// TopCandidate is the trivial ranker: the service's best candidate.
var TopCandidate = RankerFunc(func(_ *Context, cands []lookup.Candidate) kg.EntityID {
	if len(cands) == 0 {
		return kg.NoEntity
	}
	return cands[0].ID
})

// Result carries a task run's predictions, accuracy, and the instrumented
// lookup time (wall plus virtual for simulated remote services).
type Result struct {
	Predictions map[CellRef]kg.EntityID
	Confusion   metrics.Confusion
	LookupTime  time.Duration
	LookupCalls int
}

// F1 is shorthand for the run's F-score.
func (r *Result) F1() float64 { return r.Confusion.F1() }

// lookupAll performs the candidate-generation pass for every entity cell of
// every table, timed. parallelism ≤0 uses one goroutine per the caller's
// contract with the service ("CPU mode"); >1 exercises bulk mode.
func lookupAll(ds *tabular.Dataset, svc lookup.Service, k, parallelism int) (map[CellRef][]lookup.Candidate, time.Duration, int) {
	var refs []CellRef
	var queries []string
	for ti, tb := range ds.Tables {
		for ri, row := range tb.Rows {
			for ci, cell := range row {
				if !cell.IsEntity() {
					continue
				}
				refs = append(refs, CellRef{Table: ti, Row: ri, Col: ci})
				queries = append(queries, cell.Text)
			}
		}
	}
	if vc, ok := svc.(lookup.VirtualClock); ok {
		vc.ResetVirtual()
	}
	start := time.Now()
	results := lookup.Bulk(svc, queries, k, parallelism)
	elapsed := lookup.TotalDuration(svc, time.Since(start))

	out := make(map[CellRef][]lookup.Candidate, len(refs))
	for i, r := range refs {
		out[r] = results[i]
	}
	return out, elapsed, len(queries)
}

// typeVotes tallies, per (table, column), how often each type appears among
// the candidates of the column's cells — the shared signal every
// column-aware ranker uses.
func typeVotes(ds *tabular.Dataset, cands map[CellRef][]lookup.Candidate) map[[2]int]map[kg.TypeID]int {
	votes := make(map[[2]int]map[kg.TypeID]int)
	for ref, cs := range cands {
		key := [2]int{ref.Table, ref.Col}
		m := votes[key]
		if m == nil {
			m = make(map[kg.TypeID]int)
			votes[key] = m
		}
		// Only the strongest few candidates vote, keeping noise cells from
		// flooding the tally.
		limit := 3
		for i, c := range cs {
			if i >= limit {
				break
			}
			e := ds.Graph.Entity(c.ID)
			if e == nil {
				continue
			}
			for _, t := range e.Types {
				m[t]++
			}
		}
	}
	return votes
}
