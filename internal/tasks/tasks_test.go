package tasks

import (
	"testing"

	"emblookup/internal/baselines"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/tabular"
)

func fixtures(t *testing.T) (*kg.Graph, *kg.Schema, *tabular.Dataset, lookup.Service) {
	t.Helper()
	g, s := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 600))
	ds := tabular.GenerateDataset(g, s, tabular.DefaultDatasetConfig(tabular.STWikidata, 25))
	svc := baselines.NewElastic(lookup.CorpusFromGraph(g, false))
	return g, s, ds, svc
}

func TestCEAAccurateOnCleanData(t *testing.T) {
	_, _, ds, svc := fixtures(t)
	res := CEA(ds, svc, TopCandidate, DefaultCEAConfig())
	if res.F1() < 0.75 {
		t.Fatalf("clean CEA F1 = %.2f, want >= 0.75", res.F1())
	}
	if res.LookupCalls == 0 || res.LookupTime <= 0 {
		t.Fatal("lookup instrumentation missing")
	}
	if len(res.Predictions) != res.LookupCalls {
		t.Fatalf("%d predictions for %d lookups", len(res.Predictions), res.LookupCalls)
	}
}

func TestCEAContextRankerBeatsTopOnAmbiguity(t *testing.T) {
	// Build a tiny graph with two homonym entities of different types and a
	// table whose column context disambiguates.
	g := kg.NewGraph("mini")
	root := g.AddType("entity", kg.NoType)
	country := g.AddType("country", root)
	city := g.AddType("city", root)
	berlinCity := g.AddEntity("Berlin", nil, city)
	_ = g.AddEntity("Berlin", nil, country) // homonym of another type
	hamburg := g.AddEntity("Hamburg", nil, city)
	munich := g.AddEntity("Munich", nil, city)
	g.Reindex()

	ds := &tabular.Dataset{Name: "mini", Graph: g, Tables: []*tabular.Table{{
		Name: "cities",
		Cols: []tabular.Column{{Name: "city", TruthType: city, Prop: -1}},
		Rows: [][]tabular.Cell{
			{{Text: "Berlin", Truth: berlinCity}},
			{{Text: "Hamburg", Truth: hamburg}},
			{{Text: "Munich", Truth: munich}},
		},
	}}}
	svc := baselines.NewLevenshteinScan(lookup.CorpusFromGraph(g, false))

	typeAware := RankerFunc(func(ctx *Context, cands []lookup.Candidate) kg.EntityID {
		best := kg.NoEntity
		bestVotes := -1
		for _, c := range cands {
			e := ctx.Graph.Entity(c.ID)
			votes := 0
			for _, tp := range e.Types {
				votes += ctx.TypeVotes[tp]
			}
			if votes > bestVotes {
				best, bestVotes = c.ID, votes
			}
		}
		return best
	})
	res := CEA(ds, svc, typeAware, DefaultCEAConfig())
	if res.Confusion.TP != 3 {
		t.Fatalf("type-aware ranker should resolve all three cells, got %+v", res.Confusion)
	}
}

func TestCTAAccurateOnCleanData(t *testing.T) {
	_, _, ds, svc := fixtures(t)
	res := CTA(ds, svc, DefaultCEAConfig())
	if res.F1() < 0.6 {
		t.Fatalf("clean CTA F1 = %.2f, want >= 0.6", res.F1())
	}
}

func TestCTAPredictsMostSpecificType(t *testing.T) {
	g, s, ds, svc := fixtures(t)
	res := CTA(ds, svc, DefaultCEAConfig())
	correctSpecific := 0
	for key, pred := range res.Predictions {
		truth := ds.Tables[key[0]].Cols[key[1]].TruthType
		if truth != kg.NoType && pred == truth {
			correctSpecific++
			// Predicted type must be a leaf-ish type, not the root.
			if pred == s.Root {
				t.Fatal("CTA predicted the root type as most specific")
			}
		}
	}
	if correctSpecific == 0 {
		t.Fatal("CTA never matched the specific truth type")
	}
	_ = g
}

func TestDisambiguatePrefersCoherentSet(t *testing.T) {
	// Graph: person works in cityA; homonym city with the same label exists
	// but is unconnected. Collective disambiguation should pick the
	// connected one.
	g := kg.NewGraph("coherence")
	root := g.AddType("entity", kg.NoType)
	city := g.AddType("city", root)
	person := g.AddType("person", root)
	bornIn := g.AddProperty("bornIn", person, city)
	alice := g.AddEntity("Alice Maren", nil, person)
	springfieldA := g.AddEntity("Springfield", nil, city)
	springfieldB := g.AddEntity("Springfield", nil, city) // decoy, no links
	g.AddFact(alice, bornIn, springfieldA)
	g.Reindex()
	_ = springfieldB

	svc := baselines.NewLevenshteinScan(lookup.CorpusFromGraph(g, false))
	res := Disambiguate(g, svc, []string{"Alice Maren", "Springfield"},
		[]kg.EntityID{alice, springfieldA}, DefaultEAConfig())
	if res.Assignments[1] != springfieldA {
		t.Fatalf("collective disambiguation picked %v, want connected city %v",
			res.Assignments[1], springfieldA)
	}
	if res.Confusion.TP != 2 {
		t.Fatalf("confusion = %+v", res.Confusion)
	}
}

func TestDisambiguateNilTruths(t *testing.T) {
	g, _, _, svc := fixtures(t)
	res := Disambiguate(g, svc, []string{g.Entities[0].Label}, nil, DefaultEAConfig())
	if len(res.Assignments) != 1 {
		t.Fatal("expected one assignment")
	}
	if res.Confusion.TP+res.Confusion.FP+res.Confusion.FN != 0 {
		t.Fatal("nil truths should not be scored")
	}
}

func TestMaskCells(t *testing.T) {
	_, _, ds, _ := fixtures(t)
	masked, cells := MaskCells(ds, 0.10, 42)
	if len(cells) == 0 {
		t.Fatal("nothing masked")
	}
	for _, mc := range cells {
		if mc.Ref.Col == 0 {
			t.Fatal("subject column must never be masked")
		}
		got := masked.Tables[mc.Ref.Table].Rows[mc.Ref.Row][mc.Ref.Col]
		if got.Text != "" || got.Truth != kg.NoEntity {
			t.Fatal("masked cell not blanked")
		}
		orig := ds.Tables[mc.Ref.Table].Rows[mc.Ref.Row][mc.Ref.Col]
		if orig.Text != mc.TruthText || orig.Truth != mc.TruthID {
			t.Fatal("mask truth does not match original")
		}
	}
}

func TestRepairImputesFromGraph(t *testing.T) {
	_, _, ds, svc := fixtures(t)
	masked, cells := MaskCells(ds, 0.15, 7)
	res := Repair(masked, cells, svc, DefaultDRConfig())
	if res.F1() < 0.5 {
		t.Fatalf("repair F1 = %.2f, want >= 0.5", res.F1())
	}
	if res.LookupCalls == 0 {
		t.Fatal("repair did no lookups")
	}
	if len(res.Imputed) != len(cells) {
		t.Fatal("not every masked cell received a verdict")
	}
}

func TestRepairDeterministic(t *testing.T) {
	_, _, ds, svc := fixtures(t)
	masked, cells := MaskCells(ds, 0.10, 9)
	a := Repair(masked, cells, svc, DefaultDRConfig())
	b := Repair(masked, cells, svc, DefaultDRConfig())
	for ref, id := range a.Imputed {
		if b.Imputed[ref] != id {
			t.Fatal("repair not deterministic")
		}
	}
}

func TestCEANoisyDataDegradesExactService(t *testing.T) {
	g, _, ds, _ := fixtures(t)
	exact := baselines.NewExact(lookup.CorpusFromGraph(g, false))
	clean := CEA(ds, exact, TopCandidate, DefaultCEAConfig())
	noisy := CEA(tabular.NewInjector(3).Apply(ds), exact, TopCandidate, DefaultCEAConfig())
	if noisy.F1() >= clean.F1() {
		t.Fatalf("noise should hurt exact-match CEA: %.2f vs %.2f", noisy.F1(), clean.F1())
	}
}
