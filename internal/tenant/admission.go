package tenant

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/obs"
)

// Admission reasons a request can be rejected for.
const (
	ReasonRateLimited = "rate_limited"
	ReasonQueueFull   = "queue_full"
)

// AdmitError is a structured admission rejection: the reason becomes the
// error body and the metrics label, RetryAfter becomes the Retry-After
// header — the contract that lets a well-behaved client back off exactly
// as long as the bucket needs to refill.
type AdmitError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmitError) Error() string {
	return "tenant " + e.Tenant + ": admission rejected: " + e.Reason
}

// waiter is one caller parked in the admission queue. shed is written
// under the admission mutex before ready is closed, so the woken goroutine
// reads it race-free.
type waiter struct {
	ready chan struct{}
	shed  bool
}

// Admission enforces one tenant's quota: a token-bucket rate gate, a
// concurrency cap, and a bounded wait queue served newest-first (adaptive
// LIFO — under overload the newest caller is the one whose client is still
// listening, so it gets the next slot while the oldest waiter is shed with
// 429 + Retry-After). The un-contended Acquire/Release pair is two mutex
// hops and a clock read: zero allocations, which is what keeps the
// admission path inside the lookup alloc budget.
type Admission struct {
	tenant string
	limits Limits

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	active     int
	queue      []*waiter // oldest at [0]; Release pops the newest

	admitted   atomic.Int64
	rejectedRL atomic.Int64 // rate_limited
	rejectedQF atomic.Int64 // queue_full (shed)

	// Registry handles, set by Observe; nil handles record nothing.
	queueWait *obs.Histogram
}

// NewAdmission builds the admission gate for one tenant. Limits are taken
// as configured (callers normally pass Limits.withDefaults() output via
// the registry; a zero Limits means: no rate gate, 64 in-flight, 128
// queued).
func NewAdmission(tenantName string, l Limits) *Admission {
	l = l.withDefaults()
	return &Admission{
		tenant:     tenantName,
		limits:     l,
		tokens:     l.Burst,
		lastRefill: time.Now(),
	}
}

// Limits returns the effective (default-filled) limits.
func (a *Admission) Limits() Limits { return a.limits }

// refillLocked advances the token bucket to now. Caller holds mu.
func (a *Admission) refillLocked(now time.Time) {
	if a.limits.RatePerSec <= 0 {
		return
	}
	dt := now.Sub(a.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	a.tokens = math.Min(a.limits.Burst, a.tokens+dt*a.limits.RatePerSec)
	a.lastRefill = now
}

// Acquire admits one request or rejects it. On success the caller holds a
// concurrency slot and must call Release exactly once. Rejections are
// *AdmitError (rate gate or shed from a full queue); a caller whose ctx
// fires while queued gets ctx.Err(). The fast path — tokens available,
// slot free — allocates nothing.
func (a *Admission) Acquire(ctx context.Context) error {
	now := time.Now()
	a.mu.Lock()
	a.refillLocked(now)
	if a.limits.RatePerSec > 0 {
		if a.tokens < 1 {
			retry := time.Duration((1 - a.tokens) / a.limits.RatePerSec * float64(time.Second))
			a.mu.Unlock()
			a.rejectedRL.Add(1)
			return &AdmitError{Tenant: a.tenant, Reason: ReasonRateLimited, RetryAfter: retry}
		}
		a.tokens--
	}
	if a.active < a.limits.MaxConcurrent {
		a.active++
		a.mu.Unlock()
		a.admitted.Add(1)
		return nil
	}
	// Cap reached: queue, shedding the oldest waiter if the queue is full.
	if a.limits.QueueDepth <= 0 {
		a.mu.Unlock()
		a.rejectedQF.Add(1)
		return &AdmitError{Tenant: a.tenant, Reason: ReasonQueueFull, RetryAfter: a.retryAfter()}
	}
	var shedded *waiter
	if len(a.queue) >= a.limits.QueueDepth {
		shedded = a.queue[0]
		a.queue = a.queue[1:]
		shedded.shed = true
	}
	w := &waiter{ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()
	if shedded != nil {
		a.rejectedQF.Add(1)
		close(shedded.ready)
	}

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
	case <-done:
		// Left while queued — unless a grant or shed raced us out already.
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		<-w.ready // resolved: a grant or a shed is already on the way
	}
	if w.shed {
		return &AdmitError{Tenant: a.tenant, Reason: ReasonQueueFull, RetryAfter: a.retryAfter()}
	}
	// Granted a slot (Release handed it over without touching active).
	if ctx != nil && ctx.Err() != nil {
		a.Release()
		return ctx.Err()
	}
	a.queueWait.Since(now)
	a.admitted.Add(1)
	return nil
}

// retryAfter estimates when a shed caller should try again: one full
// service turn at the configured rate, or a nominal 50ms without one.
func (a *Admission) retryAfter() time.Duration {
	if a.limits.RatePerSec > 0 {
		return time.Duration(float64(time.Second) / a.limits.RatePerSec)
	}
	return 50 * time.Millisecond
}

// Release returns a concurrency slot. If a waiter is parked the slot
// passes directly to the *newest* one (LIFO) without ever decrementing
// active — under sustained overload the queue drains newest-first while
// the oldest waiters age toward the shed line.
func (a *Admission) Release() {
	a.mu.Lock()
	if n := len(a.queue); n > 0 {
		w := a.queue[n-1]
		a.queue = a.queue[:n-1]
		a.mu.Unlock()
		close(w.ready)
		return
	}
	a.active--
	a.mu.Unlock()
}

// AdmissionStats is one tenant's admission snapshot.
type AdmissionStats struct {
	Admitted    int64 `json:"admitted"`
	RateLimited int64 `json:"rateLimited"`
	Shed        int64 `json:"shed"`
	Active      int   `json:"active"`
	Queued      int   `json:"queued"`
}

// Stats snapshots the admission counters and gauges.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	active, queued := a.active, len(a.queue)
	a.mu.Unlock()
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		RateLimited: a.rejectedRL.Load(),
		Shed:        a.rejectedQF.Load(),
		Active:      active,
		Queued:      queued,
	}
}

// Observe wires the tenant-labeled admission metrics into reg: admitted
// and rejected counters (rejections split by reason), live queue-depth and
// in-flight gauges, and the queue-wait histogram. Call before serving.
func (a *Admission) Observe(reg *obs.Registry) {
	lbl := func(name string, kv ...string) string {
		return obs.Labels(name, append([]string{"tenant", a.tenant}, kv...)...)
	}
	reg.CounterFunc(lbl("emblookup_tenant_admitted_total"), func() float64 {
		return float64(a.admitted.Load())
	})
	reg.CounterFunc(lbl("emblookup_tenant_rejected_total", "reason", ReasonRateLimited), func() float64 {
		return float64(a.rejectedRL.Load())
	})
	reg.CounterFunc(lbl("emblookup_tenant_rejected_total", "reason", ReasonQueueFull), func() float64 {
		return float64(a.rejectedQF.Load())
	})
	reg.GaugeFunc(lbl("emblookup_tenant_active"), func() float64 {
		a.mu.Lock()
		v := a.active
		a.mu.Unlock()
		return float64(v)
	})
	reg.GaugeFunc(lbl("emblookup_tenant_queued"), func() float64 {
		a.mu.Lock()
		v := len(a.queue)
		a.mu.Unlock()
		return float64(v)
	})
	a.queueWait = reg.Histogram(lbl("emblookup_tenant_queue_wait_seconds"))
}

// RetryAfterHeader renders a RetryAfter duration as the integer seconds
// the Retry-After header wants, rounding up so "try again in 100ms" never
// becomes "now".
func RetryAfterHeader(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}
