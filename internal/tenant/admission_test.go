package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func admitErr(t *testing.T, err error) *AdmitError {
	t.Helper()
	var ae *AdmitError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AdmitError, got %v", err)
	}
	return ae
}

func TestAdmissionRateLimit(t *testing.T) {
	a := NewAdmission("x", Limits{RatePerSec: 10, Burst: 3})
	for i := 0; i < 3; i++ {
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatalf("burst request %d rejected: %v", i, err)
		}
		a.Release()
	}
	err := a.Acquire(context.Background())
	ae := admitErr(t, err)
	if ae.Reason != ReasonRateLimited {
		t.Fatalf("reason = %q, want %q", ae.Reason, ReasonRateLimited)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ae.RetryAfter)
	}
	st := a.Stats()
	if st.Admitted != 3 || st.RateLimited != 1 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 rate-limited", st)
	}
	// The bucket refills with time: at 10/s one token is back within 100ms.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := a.Acquire(context.Background()); err == nil {
			a.Release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAdmissionConcurrencyCapAndQueue(t *testing.T) {
	a := NewAdmission("x", Limits{MaxConcurrent: 2, QueueDepth: 4})
	// Fill both slots.
	for i := 0; i < 2; i++ {
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// A third caller queues and is granted once a slot frees.
	got := make(chan error, 1)
	go func() { got <- a.Acquire(context.Background()) }()
	select {
	case err := <-got:
		t.Fatalf("queued caller returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	a.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued caller rejected: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never granted")
	}
	a.Release()
	a.Release()
	if st := a.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestAdmissionLIFOShed checks both halves of adaptive LIFO: a Release hands
// the slot to the newest waiter, and a full queue sheds the oldest.
func TestAdmissionLIFOShed(t *testing.T) {
	a := NewAdmission("x", Limits{MaxConcurrent: 1, QueueDepth: 2})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Park two waiters in arrival order.
	type res struct {
		order int
		err   error
	}
	results := make(chan res, 3)
	park := func(order int) {
		go func() { results <- res{order, a.Acquire(context.Background())} }()
		// Wait until the waiter is actually queued before parking the next,
		// so the queue order matches the arrival order.
		deadline := time.Now().Add(2 * time.Second)
		for a.Stats().Queued < order {
			if time.Now().After(deadline) {
				t.Errorf("waiter %d never queued", order)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	park(1)
	park(2)

	// A third arrival overflows the queue: the OLDEST waiter (1) is shed
	// (the newcomer takes its place, so the queue stays at depth 2).
	go func() { results <- res{3, a.Acquire(context.Background())} }()
	r := <-results
	if r.order != 1 {
		t.Fatalf("waiter %d resolved first, want the shed oldest (1)", r.order)
	}
	ae := admitErr(t, r.err)
	if ae.Reason != ReasonQueueFull {
		t.Fatalf("shed reason = %q, want %q", ae.Reason, ReasonQueueFull)
	}

	// Release hands the slot to the NEWEST waiter (3), then (2).
	a.Release()
	if r = <-results; r.order != 3 || r.err != nil {
		t.Fatalf("first grant went to waiter %d (err %v), want 3", r.order, r.err)
	}
	a.Release()
	if r = <-results; r.order != 2 || r.err != nil {
		t.Fatalf("second grant went to waiter %d (err %v), want 2", r.order, r.err)
	}
	a.Release()
	if st := a.Stats(); st.Shed != 1 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 shed and all drained", st)
	}
}

func TestAdmissionNoQueue(t *testing.T) {
	a := NewAdmission("x", Limits{MaxConcurrent: 1, QueueDepth: -1})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ae := admitErr(t, a.Acquire(context.Background()))
	if ae.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q, want immediate %q with no queue", ae.Reason, ReasonQueueFull)
	}
	a.Release()
}

func TestAdmissionCtxWhileQueued(t *testing.T) {
	a := NewAdmission("x", Limits{MaxConcurrent: 1, QueueDepth: 4})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if st := a.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled waiter left in queue: %+v", st)
	}
	// The held slot still works and the departed waiter costs nothing.
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

// TestAdmissionConcurrentStress hammers one gate from many goroutines and
// checks conservation: every Acquire resolves exactly once and the gate
// drains to zero. Run under -race this also exercises the grant/shed/cancel
// interleavings.
func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission("x", Limits{MaxConcurrent: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	var admitted, rejected, cancelled int64
	var mu sync.Mutex
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (c+i)%5 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				}
				err := a.Acquire(ctx)
				mu.Lock()
				switch {
				case err == nil:
					admitted++
				case errors.As(err, new(*AdmitError)):
					rejected++
				default:
					cancelled++
				}
				mu.Unlock()
				if err == nil {
					time.Sleep(time.Duration(i%2) * 100 * time.Microsecond)
					a.Release()
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	if st := a.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("gate did not drain: %+v", st)
	}
	if total := admitted + rejected + cancelled; total != 32*50 {
		t.Fatalf("resolved %d of %d acquires", total, 32*50)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestRetryAfterHeader(t *testing.T) {
	if got := RetryAfterHeader(100 * time.Millisecond); got != "1" {
		t.Fatalf("100ms → %q, want rounded up to 1s", got)
	}
	if got := RetryAfterHeader(1500 * time.Millisecond); got != "2" {
		t.Fatalf("1.5s → %q, want 2", got)
	}
}

func TestLimitsDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if l.MaxConcurrent != 64 || l.QueueDepth != 128 || l.MaxK != 1000 || l.MaxBatch != 4096 {
		t.Fatalf("defaults = %+v", l)
	}
	if l.MaxDeadlineMs != 30000 || l.MaxDeadline() != 30*time.Second {
		t.Fatalf("deadline defaults = %+v", l)
	}
	if l.DefaultDeadline() != 0 {
		t.Fatal("zero DefaultDeadlineMs must mean no implicit deadline")
	}
}
