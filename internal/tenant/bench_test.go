package tenant

import (
	"context"
	"testing"
)

// BenchmarkAdmissionAcquireRelease measures the uncontended admission fast
// path — the per-request overhead every tenant-routed lookup pays. The
// budget is zero allocations (asserted by TestTenantAdmissionAllocs at the
// repo root); `make verify` runs this with -benchmem so any drift shows up
// in the allocs/op column.
func BenchmarkAdmissionAcquireRelease(b *testing.B) {
	adm := NewAdmission("bench", Limits{RatePerSec: 1e9, MaxConcurrent: 64})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adm.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		adm.Release()
	}
}

// BenchmarkAdmissionRejected measures the cost of a shed request — the 429
// path must stay far cheaper than an admitted lookup for overload shedding
// to protect goodput.
func BenchmarkAdmissionRejected(b *testing.B) {
	adm := NewAdmission("bench", Limits{RatePerSec: 0.001, Burst: 1, MaxConcurrent: 1, QueueDepth: -1})
	ctx := context.Background()
	adm.Acquire(ctx) // drain the single burst token
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adm.Acquire(ctx); err == nil {
			b.Fatal("over-budget acquire admitted")
		}
	}
}
