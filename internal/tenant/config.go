// Package tenant turns one emblookup process into a multi-tenant host: a
// registry of named models/KGs (lazy zero-copy attach, ref-counted close,
// hot swap by atomic pointer) fronted by per-tenant admission control —
// token-bucket rate limits, concurrency caps, and a bounded admission
// queue with LIFO shedding — plus the deadline budget every request
// carries from HTTP through the serve substrate into the shard scans.
// Overload degrades predictably: an abusive tenant is throttled at its own
// quota while well-behaved tenants keep their isolated latency
// (DESIGN.md §15).
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Limits is one tenant's admission contract. Zero values pick the
// defaults below; explicit negatives disable the corresponding limit.
type Limits struct {
	// RatePerSec is the token-bucket refill rate in requests per second
	// (0 = unlimited: no rate gate).
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the bucket depth — how many requests may arrive back-to-back
	// before the rate gate bites (0 = max(1, RatePerSec)).
	Burst float64 `json:"burst,omitempty"`
	// MaxConcurrent caps in-flight requests (0 = 64).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// QueueDepth bounds how many requests may wait for a concurrency slot;
	// past it the *oldest* waiter is shed with 429 (adaptive LIFO: newest
	// first, because the newest caller is the one still likely to be
	// listening). 0 = 2×MaxConcurrent; negative = no queue (immediate 429
	// at the cap).
	QueueDepth int `json:"queueDepth,omitempty"`
	// MaxK bounds the per-request candidate budget (0 = 1000, the
	// single-tenant server default).
	MaxK int `json:"maxK,omitempty"`
	// MaxBatch bounds the queries one /bulk request may carry (0 = 4096).
	MaxBatch int `json:"maxBatch,omitempty"`
	// DefaultDeadlineMs is the deadline applied when the request carries
	// none (0 = no implicit deadline).
	DefaultDeadlineMs int `json:"defaultDeadlineMs,omitempty"`
	// MaxDeadlineMs clamps the deadline a request may ask for (0 = 30000).
	MaxDeadlineMs int `json:"maxDeadlineMs,omitempty"`
}

func (l Limits) withDefaults() Limits {
	if l.Burst <= 0 {
		l.Burst = l.RatePerSec
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	if l.MaxConcurrent == 0 {
		l.MaxConcurrent = 64
	}
	if l.QueueDepth == 0 {
		l.QueueDepth = 2 * l.MaxConcurrent
	}
	if l.MaxK == 0 {
		l.MaxK = 1000
	}
	if l.MaxBatch == 0 {
		l.MaxBatch = 4096
	}
	if l.MaxDeadlineMs == 0 {
		l.MaxDeadlineMs = 30000
	}
	return l
}

// MaxDeadline returns the clamp as a duration (0 = unclamped).
func (l Limits) MaxDeadline() time.Duration {
	if l.MaxDeadlineMs <= 0 {
		return 0
	}
	return time.Duration(l.MaxDeadlineMs) * time.Millisecond
}

// DefaultDeadline returns the implicit per-request deadline (0 = none).
func (l Limits) DefaultDeadline() time.Duration {
	if l.DefaultDeadlineMs <= 0 {
		return 0
	}
	return time.Duration(l.DefaultDeadlineMs) * time.Millisecond
}

// TenantConfig declares one hosted tenant: its name (the /t/{name}/ path
// segment), the graph and model artifact paths, and its serving shape.
type TenantConfig struct {
	Name  string `json:"name"`
	Graph string `json:"graph"`
	Model string `json:"model"`
	// Shards, CacheSize, MaxBatch, Window tune the tenant's serve substrate
	// (zero = the serve package defaults: 4 shards, 4096 entries, 32
	// queries, 200µs).
	Shards    int `json:"shards,omitempty"`
	CacheSize int `json:"cacheSize,omitempty"`
	MaxBatch  int `json:"maxBatch,omitempty"`
	WindowUs  int `json:"windowUs,omitempty"`
	// Preload attaches the model at startup instead of on first request.
	Preload bool   `json:"preload,omitempty"`
	Limits  Limits `json:"limits"`
}

// Config is the `serve -tenants` file: the tenants hosted by one process.
type Config struct {
	Tenants []TenantConfig `json:"tenants"`
}

// Validate checks names are present and unique and paths are set.
func (c Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("tenant: config declares no tenants")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("tenant: tenants[%d] has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Graph == "" || t.Model == "" {
			return fmt.Errorf("tenant: tenant %q needs both graph and model paths", t.Name)
		}
	}
	return nil
}

// LoadConfig reads and validates a tenants JSON file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("tenant: reading config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
