package tenant

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/obs"
	"emblookup/internal/serve"
)

// Handle is one loaded generation of a tenant's model: the zero-copy
// attached artifact, its graph, and the serve substrate over them. Handles
// are ref-counted: every request pins the handle it serves with, so a hot
// swap can retire the old generation and close its mmap backing only after
// the last in-flight request on it finishes — the routerView drain
// discipline applied to model lifetimes.
type Handle struct {
	tenant string
	graph  *kg.Graph
	model  *core.EmbLookup // the attached model owning the artifact backing
	sv     *serve.Serve

	refs      atomic.Int64 // registry's reference counts as 1
	retired   atomic.Bool
	closeOnce sync.Once
}

// Graph returns the handle's knowledge graph.
func (h *Handle) Graph() *kg.Graph { return h.graph }

// Serve returns the handle's serving substrate.
func (h *Handle) Serve() *serve.Serve { return h.sv }

// Release unpins the handle. The last release of a retired handle closes
// it: the serve coalescer flushes and the artifact backing is unmapped.
func (h *Handle) Release() {
	if h.refs.Add(-1) == 0 && h.retired.Load() {
		h.close()
	}
}

func (h *Handle) close() {
	h.closeOnce.Do(func() {
		h.sv.Close()
		h.model.Close()
	})
}

// retire drops the registry's own reference. New acquires bounce to the
// replacement handle; the generation closes when its refcount drains.
func (h *Handle) retire() {
	h.retired.Store(true)
	h.Release()
}

// Tenant is one hosted model slot: its admission gate, its limits, and the
// current Handle generation (atomic pointer; nil until first use when the
// tenant is lazy-loaded).
type Tenant struct {
	cfg TenantConfig
	adm *Admission
	reg *obs.Registry

	latency *obs.Histogram // per-tenant end-to-end request latency
	ddlExc  atomic.Int64   // requests that ran out of deadline

	mu  sync.Mutex // serializes load and swap (not the request path)
	cur atomic.Pointer[Handle]

	loadedAt atomic.Int64 // unix nanos of the last successful (re)load
}

// Name returns the tenant's route name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Admission returns the tenant's admission gate.
func (t *Tenant) Admission() *Admission { return t.adm }

// Limits returns the tenant's effective limits.
func (t *Tenant) Limits() Limits { return t.adm.Limits() }

// Latency returns the tenant-labeled request histogram.
func (t *Tenant) Latency() *obs.Histogram { return t.latency }

// DeadlineExceeded increments the tenant's deadline_exceeded counter by n
// queries — called exactly once per failed query, at the outermost layer
// that owns the request (never in inner retry loops).
func (t *Tenant) DeadlineExceeded(n int64) { t.ddlExc.Add(n) }

// Loaded reports whether the tenant's model is currently attached.
func (t *Tenant) Loaded() bool { return t.cur.Load() != nil }

// Acquire pins the tenant's current handle, lazily attaching the model on
// first use. The retry loop closes the race with a concurrent Swap: a
// handle retired between load and pin is released and the new generation
// taken instead, so a swap's drain can never miss a request.
func (t *Tenant) Acquire() (*Handle, error) {
	for {
		h := t.cur.Load()
		if h == nil {
			var err error
			if h, err = t.load(); err != nil {
				return nil, err
			}
		}
		h.refs.Add(1)
		if !h.retired.Load() {
			return h, nil
		}
		h.Release()
	}
}

// load attaches the tenant's model if no generation is live yet.
func (t *Tenant) load() (*Handle, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h := t.cur.Load(); h != nil {
		return h, nil
	}
	h, err := t.open()
	if err != nil {
		return nil, err
	}
	t.cur.Store(h)
	return h, nil
}

// open attaches one fresh generation from the configured artifact paths.
func (t *Tenant) open() (*Handle, error) {
	g, err := kg.LoadFile(t.cfg.Graph)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: loading graph: %w", t.cfg.Name, err)
	}
	model, err := core.LoadFile(t.cfg.Model, g)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: loading model: %w", t.cfg.Name, err)
	}
	sv, err := serve.New(model, serve.Options{
		Shards:    t.cfg.Shards,
		CacheSize: t.cfg.CacheSize,
		MaxBatch:  t.cfg.MaxBatch,
		Window:    time.Duration(t.cfg.WindowUs) * time.Microsecond,
		Registry:  t.reg,
	})
	if err != nil {
		model.Close()
		return nil, fmt.Errorf("tenant %s: serve substrate: %w", t.cfg.Name, err)
	}
	h := &Handle{tenant: t.cfg.Name, graph: g, model: model, sv: sv}
	h.refs.Store(1) // the registry's reference
	t.loadedAt.Store(time.Now().UnixNano())
	return h, nil
}

// Swap hot-reloads the tenant: the new generation is attached from the
// (possibly rewritten) artifact paths, the pointer swaps atomically — new
// requests land on the new model immediately — and the old generation
// closes when its in-flight requests drain. Lookups never block on a swap.
func (t *Tenant) Swap() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, err := t.open()
	if err != nil {
		return err
	}
	old := t.cur.Swap(h)
	if old != nil {
		old.retire()
	}
	return nil
}

// TenantStats is one tenant's /stats section.
type TenantStats struct {
	Name             string              `json:"name"`
	Loaded           bool                `json:"loaded"`
	Limits           Limits              `json:"limits"`
	Admission        AdmissionStats      `json:"admission"`
	DeadlineExceeded int64               `json:"deadlineExceeded"`
	Latency          *obs.LatencySummary `json:"latency,omitempty"`
	Serving          *serve.Stats        `json:"serving,omitempty"`
	Graph            string              `json:"graph,omitempty"`
	Entities         int                 `json:"entities,omitempty"`
}

// Stats snapshots the tenant without forcing a lazy load.
func (t *Tenant) Stats() TenantStats {
	st := TenantStats{
		Name:             t.cfg.Name,
		Limits:           t.adm.Limits(),
		Admission:        t.adm.Stats(),
		DeadlineExceeded: t.ddlExc.Load(),
	}
	if sum := t.latency.Summary(); sum.Count > 0 {
		st.Latency = &sum
	}
	if h := t.cur.Load(); h != nil {
		st.Loaded = true
		sv := h.sv.Stats()
		st.Serving = &sv
		st.Graph = h.graph.Name
		st.Entities = len(h.graph.Entities)
	}
	return st
}

// Registry hosts the process's tenants, keyed by route name.
type Registry struct {
	tenants map[string]*Tenant
	names   []string // config order
}

// NewRegistry builds the tenant registry from a validated config. Metrics
// land in reg (nil = obs.Default()) under tenant-labeled names. Tenants
// with Preload attach immediately; the rest attach on first request.
func NewRegistry(cfg Config, reg *obs.Registry) (*Registry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.Default()
	}
	r := &Registry{tenants: make(map[string]*Tenant, len(cfg.Tenants))}
	for _, tc := range cfg.Tenants {
		t := &Tenant{cfg: tc, reg: reg, adm: NewAdmission(tc.Name, tc.Limits)}
		t.adm.Observe(reg)
		t.latency = reg.Histogram(obs.Labels("emblookup_tenant_request_seconds", "tenant", tc.Name))
		reg.CounterFunc(obs.Labels("emblookup_tenant_deadline_exceeded_total", "tenant", tc.Name), func() float64 {
			return float64(t.ddlExc.Load())
		})
		r.tenants[tc.Name] = t
		r.names = append(r.names, tc.Name)
		if tc.Preload {
			if _, err := t.load(); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Tenant resolves a route name.
func (r *Registry) Tenant(name string) (*Tenant, bool) {
	t, ok := r.tenants[name]
	return t, ok
}

// Names returns the hosted tenant names in config order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// Stats snapshots every tenant, sorted by name for stable output.
func (r *Registry) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(r.tenants))
	for _, name := range r.names {
		out = append(out, r.tenants[name].Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close retires every tenant's current generation; each closes when its
// in-flight requests drain (immediately when idle).
func (r *Registry) Close() {
	for _, t := range r.tenants {
		t.mu.Lock()
		if h := t.cur.Swap(nil); h != nil {
			h.retire()
		}
		t.mu.Unlock()
	}
}
