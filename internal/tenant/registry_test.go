package tenant

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/obs"
)

var (
	artOnce  sync.Once
	artDir   string
	artGraph *kg.Graph
	artModel *core.EmbLookup
	artErr   error
)

// testArtifacts trains one small model and saves graph + model (with index
// artifact) once for the whole package; tenants in the tests attach these
// files the way production attaches v4 artifacts.
func testArtifacts(t *testing.T) (graphPath, modelPath string) {
	t.Helper()
	artOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			artErr = err
			return
		}
		dir, err := os.MkdirTemp("", "tenanttest")
		if err != nil {
			artErr = err
			return
		}
		if err := g.SaveFile(filepath.Join(dir, "graph.bin")); err != nil {
			artErr = err
			return
		}
		if err := m.SaveFileWithIndex(filepath.Join(dir, "model.bin")); err != nil {
			artErr = err
			return
		}
		artDir, artGraph, artModel = dir, g, m
	})
	if artErr != nil {
		t.Fatal(artErr)
	}
	return filepath.Join(artDir, "graph.bin"), filepath.Join(artDir, "model.bin")
}

func testRegistry(t *testing.T, tenants ...TenantConfig) *Registry {
	t.Helper()
	r, err := NewRegistry(Config{Tenants: tenants}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegistryLazyLoad(t *testing.T) {
	gp, mp := testArtifacts(t)
	r := testRegistry(t, TenantConfig{Name: "a", Graph: gp, Model: mp, Shards: 1})
	tn, ok := r.Tenant("a")
	if !ok {
		t.Fatal("tenant a missing")
	}
	if tn.Loaded() {
		t.Fatal("tenant loaded before first request")
	}
	h, err := tn.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if !tn.Loaded() {
		t.Fatal("tenant not loaded after Acquire")
	}
	// The attached model answers bit-identically to the in-memory donor.
	q := artGraph.Entities[3].Label
	want := artModel.Lookup(q, 5)
	got := h.Serve().Lookup(q, 5)
	if len(want) != len(got) {
		t.Fatalf("%d vs %d candidates", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("candidate %d diverges: %+v vs %+v", i, want[i], got[i])
		}
	}
	if _, ok := r.Tenant("nope"); ok {
		t.Fatal("unknown tenant resolved")
	}
}

func TestRegistryPreload(t *testing.T) {
	gp, mp := testArtifacts(t)
	r := testRegistry(t, TenantConfig{Name: "a", Graph: gp, Model: mp, Shards: 1, Preload: true})
	tn, _ := r.Tenant("a")
	if !tn.Loaded() {
		t.Fatal("preload tenant not loaded at construction")
	}
}

// TestRegistrySwapDrain checks the hot-swap lifecycle: the old generation
// keeps serving its in-flight request across a Swap and closes only when
// that request releases it; new acquires land on the new generation
// immediately.
func TestRegistrySwapDrain(t *testing.T) {
	gp, mp := testArtifacts(t)
	r := testRegistry(t, TenantConfig{Name: "a", Graph: gp, Model: mp, Shards: 1, Preload: true})
	tn, _ := r.Tenant("a")

	old, err := tn.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Swap(); err != nil {
		t.Fatal(err)
	}
	if !old.retired.Load() {
		t.Fatal("old generation not retired after swap")
	}
	// Still pinned: the old handle must keep answering.
	q := artGraph.Entities[1].Label
	if res := old.Serve().Lookup(q, 3); len(res) == 0 {
		t.Fatal("retired-but-pinned handle stopped serving")
	}

	fresh, err := tn.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == old {
		t.Fatal("Acquire after swap returned the retired generation")
	}
	if refs := old.refs.Load(); refs != 1 {
		t.Fatalf("old generation refs = %d, want 1 (just this test)", refs)
	}
	old.Release()
	if refs := old.refs.Load(); refs != 0 {
		t.Fatalf("old generation refs = %d after final release, want 0", refs)
	}
	if res := fresh.Serve().Lookup(q, 3); len(res) == 0 {
		t.Fatal("new generation not serving")
	}
	fresh.Release()
}

// TestRegistryAcquireSwapRace hammers Acquire/Release against concurrent
// Swaps; under -race this exercises the retired-handle retry loop.
func TestRegistryAcquireSwapRace(t *testing.T) {
	gp, mp := testArtifacts(t)
	r := testRegistry(t, TenantConfig{Name: "a", Graph: gp, Model: mp, Shards: 1, Preload: true})
	tn, _ := r.Tenant("a")
	q := artGraph.Entities[0].Label

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h, err := tn.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if res := h.Serve().Lookup(q, 3); len(res) == 0 {
					t.Error("empty result during swap churn")
				}
				h.Release()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := tn.Swap(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestRegistryCloseWithPinnedHandle(t *testing.T) {
	gp, mp := testArtifacts(t)
	r, err := NewRegistry(Config{Tenants: []TenantConfig{
		{Name: "a", Graph: gp, Model: mp, Shards: 1, Preload: true},
	}}, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Tenant("a")
	h, err := tn.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	// The registry dropped its reference but this request still holds one.
	q := artGraph.Entities[2].Label
	if res := h.Serve().Lookup(q, 3); len(res) == 0 {
		t.Fatal("pinned handle stopped serving after registry close")
	}
	h.Release()
	if refs := h.refs.Load(); refs != 0 {
		t.Fatalf("refs = %d after final release", refs)
	}
}

func TestConfigValidate(t *testing.T) {
	gp, mp := testArtifacts(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"unnamed", Config{Tenants: []TenantConfig{{Graph: gp, Model: mp}}}},
		{"duplicate", Config{Tenants: []TenantConfig{
			{Name: "a", Graph: gp, Model: mp},
			{Name: "a", Graph: gp, Model: mp},
		}}},
		{"no paths", Config{Tenants: []TenantConfig{{Name: "a"}}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
	if _, err := NewRegistry(Config{}, obs.New()); err == nil {
		t.Fatal("NewRegistry accepted an empty config")
	}
}
