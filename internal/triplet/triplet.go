// Package triplet implements the triplet-mining process of Section III-B:
// for each knowledge-graph entity it generates (anchor, positive, negative)
// string triplets that encode semantic similarity (label ↔ alias pairs),
// syntactic similarity (label ↔ artificially misspelled label), and the
// type-based heuristic (label ↔ label of a same-type entity), with random
// entity labels as negatives. It also provides the easy/semi-hard/hard
// classification used by the online-mining half of training.
package triplet

import (
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/tabular"
)

// Triplet is one (anchor, positive, negative) training example.
type Triplet struct {
	Anchor, Positive, Negative string
}

// MinerConfig controls triplet generation. The paper's default budget is
// 100 triplets per entity: synonyms first (they number under 50 for 95% of
// entities), the remaining budget spent on syntactic perturbations, with a
// small share of type-based positives.
type MinerConfig struct {
	PerEntity int
	Seed      uint64

	// TypeShare is the fraction of the budget spent on same-type positive
	// pairs (the second heuristic of Section III-B). The default is 0.05.
	TypeShare float64

	// MaxEntities caps how many entities are mined (0 = all); useful for
	// the training-size sweeps of Figure 3.
	MaxEntities int

	// Related, when set, supplies the pool of related entities for the
	// type/property heuristic instead of the same-type buckets — e.g. the
	// nearest neighbors of a knowledge-graph embedding model, the
	// bootstrap direction the paper's conclusion sketches.
	Related func(kg.EntityID) []kg.EntityID
}

// DefaultMinerConfig mirrors the paper's defaults.
func DefaultMinerConfig() MinerConfig {
	return MinerConfig{PerEntity: 100, Seed: 29, TypeShare: 0.05}
}

// Mine generates the training triplets for g.
func Mine(g *kg.Graph, cfg MinerConfig) []Triplet {
	if cfg.PerEntity <= 0 {
		cfg.PerEntity = 100
	}
	rng := mathx.NewRNG(cfg.Seed)
	n := len(g.Entities)
	if n == 0 {
		return nil
	}
	limit := n
	if cfg.MaxEntities > 0 && cfg.MaxEntities < n {
		limit = cfg.MaxEntities
	}

	// Same-type pools for the type heuristic.
	byType := map[kg.TypeID][]kg.EntityID{}
	for i := range g.Entities {
		for _, t := range g.Entities[i].Types {
			byType[t] = append(byType[t], g.Entities[i].ID)
		}
	}

	negLabel := func() string {
		return g.Entities[rng.Intn(n)].Label
	}

	out := make([]Triplet, 0, limit*cfg.PerEntity/2)
	injector := &tabular.Injector{Fraction: 1}
	for i := 0; i < limit; i++ {
		e := &g.Entities[i]
		budget := cfg.PerEntity

		// 0. Identity triplets: the label as its own positive. These are
		// trivial for a plain embedding model but load-bearing for models
		// that treat queries and index rows asymmetrically (EmbLookup's
		// known-mention slot): they teach the query form of a label to map
		// onto its index form.
		identity := budget / 10
		if identity < 1 {
			identity = 1
		}
		for t := 0; t < identity && budget > 0; t++ {
			out = append(out, Triplet{Anchor: e.Label, Positive: e.Label, Negative: negLabel()})
			budget--
		}

		// 1. Semantic triplets: every alias is a positive. Half the
		// triplets anchor on the alias instead of the label: retrieval
		// compares d(query, ownLabel) against d(query, otherLabel), and
		// only query-anchored triplets constrain that exact ordering.
		for _, alias := range e.Aliases {
			if budget == 0 {
				break
			}
			if rng.Bool(0.5) {
				out = append(out, Triplet{Anchor: alias, Positive: e.Label, Negative: negLabel()})
			} else {
				out = append(out, Triplet{Anchor: e.Label, Positive: alias, Negative: negLabel()})
			}
			budget--
		}

		// 2. Related-entity positives: by default entities sharing a type
		// (Section III-B's heuristic); with cfg.Related, an arbitrary
		// relatedness source such as KG-embedding neighbors.
		typeBudget := int(float64(cfg.PerEntity) * cfg.TypeShare)
		for t := 0; t < typeBudget && budget > 0; t++ {
			var pool []kg.EntityID
			if cfg.Related != nil {
				pool = cfg.Related(e.ID)
			} else if len(e.Types) > 0 {
				pool = byType[e.Types[rng.Intn(len(e.Types))]]
			}
			if len(pool) < 1 {
				continue
			}
			other := pool[rng.Intn(len(pool))]
			if other == e.ID {
				continue
			}
			out = append(out, Triplet{Anchor: e.Label, Positive: g.Label(other), Negative: negLabel()})
			budget--
		}

		// 3. Syntactic triplets: perturb the label with the same noise
		// classes the evaluation injects, so the CNN sees realistic typos.
		// Half anchor on the noisy form (see the semantic case above).
		for budget > 0 {
			noisy := injector.Corrupt(e.Label, rng)
			if rng.Bool(0.5) {
				out = append(out, Triplet{Anchor: noisy, Positive: e.Label, Negative: negLabel()})
			} else {
				out = append(out, Triplet{Anchor: e.Label, Positive: noisy, Negative: negLabel()})
			}
			budget--
		}
	}
	return out
}

// SynonymPairs extracts the (label, alias) pairs used to train the semantic
// (fastText-substitute) model.
func SynonymPairs(g *kg.Graph) [][2]string {
	var out [][2]string
	for i := range g.Entities {
		e := &g.Entities[i]
		for _, a := range e.Aliases {
			out = append(out, [2]string{e.Label, a})
		}
	}
	return out
}

// Labels returns every entity label, the negative-sampling pool.
func Labels(g *kg.Graph) []string {
	out := make([]string, len(g.Entities))
	for i := range g.Entities {
		out[i] = g.Entities[i].Label
	}
	return out
}

// Hardness classifies a triplet's difficulty under the current embeddings,
// following Section III-B: easy triplets have zero loss, semi-hard triplets
// have positive loss but the negative is still farther than the positive,
// and hard triplets have the negative closer than the positive.
type Hardness int

const (
	// Easy: d(a,p) + margin <= d(a,n); the loss is zero.
	Easy Hardness = iota
	// SemiHard: d(a,p) < d(a,n) < d(a,p) + margin.
	SemiHard
	// Hard: d(a,n) <= d(a,p).
	Hard
)

// Classify returns the hardness of a triplet given the squared distances
// and the margin.
func Classify(dap, dan, margin float32) Hardness {
	switch {
	case dan <= dap:
		return Hard
	case dan < dap+margin:
		return SemiHard
	default:
		return Easy
	}
}

// SelectHard returns the subset of triplets that are semi-hard or hard
// under embed — the working set for the online-mining epochs (the second
// half of the paper's training schedule).
func SelectHard(ts []Triplet, embed func(string) []float32, margin float32) []Triplet {
	var out []Triplet
	for _, t := range ts {
		a, p, n := embed(t.Anchor), embed(t.Positive), embed(t.Negative)
		dap := mathx.SquaredL2(a, p)
		dan := mathx.SquaredL2(a, n)
		if Classify(dap, dan, margin) != Easy {
			out = append(out, t)
		}
	}
	return out
}
