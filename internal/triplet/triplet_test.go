package triplet

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/strutil"
)

func graph(t *testing.T) *kg.Graph {
	t.Helper()
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 400))
	return g
}

func TestMineBudgetRespected(t *testing.T) {
	g := graph(t)
	cfg := DefaultMinerConfig()
	cfg.PerEntity = 20
	ts := Mine(g, cfg)
	if len(ts) != 20*len(g.Entities) {
		t.Fatalf("got %d triplets, want %d", len(ts), 20*len(g.Entities))
	}
}

func TestMineMaxEntities(t *testing.T) {
	g := graph(t)
	cfg := DefaultMinerConfig()
	cfg.PerEntity = 10
	cfg.MaxEntities = 7
	ts := Mine(g, cfg)
	if len(ts) != 70 {
		t.Fatalf("got %d triplets, want 70", len(ts))
	}
}

func TestMineAliasesAppearAsPositives(t *testing.T) {
	g := graph(t)
	ts := Mine(g, DefaultMinerConfig())
	// Collect (anchor, positive) pairs in both orientations (the miner
	// anchors half the semantic triplets on the alias) and verify most
	// entities have every alias paired with their label.
	pos := map[string]map[string]bool{}
	addPair := func(a, b string) {
		if pos[a] == nil {
			pos[a] = map[string]bool{}
		}
		pos[a][b] = true
	}
	for _, tr := range ts {
		addPair(tr.Anchor, tr.Positive)
		addPair(tr.Positive, tr.Anchor)
	}
	verified := 0
	for i := range g.Entities {
		e := &g.Entities[i]
		if len(e.Aliases) == 0 || len(e.Aliases) > 50 {
			continue
		}
		all := true
		for _, a := range e.Aliases {
			if !pos[e.Label][a] {
				all = false
			}
		}
		if all {
			verified++
		}
	}
	if verified < len(g.Entities)/2 {
		t.Fatalf("only %d/%d entities had all aliases mined", verified, len(g.Entities))
	}
}

func TestMineSyntacticPositivesAreClose(t *testing.T) {
	g := graph(t)
	cfg := DefaultMinerConfig()
	cfg.TypeShare = 0
	ts := Mine(g, cfg)
	// Syntactic positives (non-alias) should mostly be within small edit
	// distance of their anchor.
	aliasSet := map[string]map[string]bool{}
	for i := range g.Entities {
		e := &g.Entities[i]
		aliasSet[e.Label] = map[string]bool{}
		for _, a := range e.Aliases {
			aliasSet[e.Label][a] = true
		}
	}
	syntactic, close := 0, 0
	for _, tr := range ts {
		if as, ok := aliasSet[tr.Anchor]; ok && !as[tr.Positive] {
			syntactic++
			if strutil.Levenshtein(tr.Anchor, tr.Positive) <= 4 ||
				strutil.TokenSortRatio(tr.Anchor, tr.Positive) >= 80 {
				close++
			}
		}
	}
	if syntactic == 0 {
		t.Fatal("no syntactic triplets mined")
	}
	if float64(close)/float64(syntactic) < 0.6 {
		t.Fatalf("only %d/%d syntactic positives are near their anchor", close, syntactic)
	}
}

func TestMineDeterministic(t *testing.T) {
	g := graph(t)
	cfg := DefaultMinerConfig()
	cfg.PerEntity = 15
	a := Mine(g, cfg)
	b := Mine(g, cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("triplets differ between identical configs")
		}
	}
}

func TestSynonymPairsAndLabels(t *testing.T) {
	g := graph(t)
	pairs := SynonymPairs(g)
	if len(pairs) == 0 {
		t.Fatal("no synonym pairs")
	}
	for _, p := range pairs[:10] {
		if p[0] == "" || p[1] == "" {
			t.Fatal("empty pair element")
		}
	}
	labels := Labels(g)
	if len(labels) != len(g.Entities) {
		t.Fatal("labels count mismatch")
	}
}

func TestClassify(t *testing.T) {
	// dap=1, dan=5, margin=1: easy (5 >= 1+1).
	if Classify(1, 5, 1) != Easy {
		t.Fatal("expected Easy")
	}
	// dap=1, dan=1.5, margin=1: semi-hard (1 < 1.5 < 2).
	if Classify(1, 1.5, 1) != SemiHard {
		t.Fatal("expected SemiHard")
	}
	// dan <= dap: hard.
	if Classify(2, 1, 1) != Hard {
		t.Fatal("expected Hard")
	}
	if Classify(2, 2, 1) != Hard {
		t.Fatal("expected Hard at equality")
	}
}

func TestSelectHardFilters(t *testing.T) {
	// Embedding: map strings to fixed 1-D points.
	points := map[string]float32{"a": 0, "p_easy": 0.1, "n_far": 10, "p2": 0, "n_near": 0.05}
	embed := func(s string) []float32 { return []float32{points[s]} }
	ts := []Triplet{
		{"a", "p_easy", "n_far"}, // easy: dap=0.01, dan=100
		{"a", "p2", "n_near"},    // hard-ish: dan=0.0025 < margin
	}
	got := SelectHard(ts, embed, 1)
	if len(got) != 1 || got[0].Positive != "p2" {
		t.Fatalf("SelectHard = %+v", got)
	}
}
