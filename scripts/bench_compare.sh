#!/usr/bin/env bash
# bench_compare.sh — regenerate the benchmark snapshots into a scratch
# directory and diff them against the committed BENCH_lookup.json /
# BENCH_serve.json / BENCH_build.json / BENCH_cluster.json /
# BENCH_replica.json / BENCH_scale.json / BENCH_tenant.json with
# cmd/benchcompare. Exits non-zero when any timing metric regressed by more
# than 20%. `make bench-compare` runs this.
#
# The build and scale snapshots regenerate at 100k entities (the committed
# BENCH_scale.json additionally carries a 1M row; rows missing from the
# fresh run are skipped by the diff, so the million-entity measurement is
# refreshed only by an explicit `benchkg -bench-scale BENCH_scale.json
# -scales 10000,100000,1000000`).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== regenerating snapshots =="
go run ./cmd/benchkg -bench-lookup "$tmp/BENCH_lookup.json"
go run ./cmd/benchkg -bench-serve "$tmp/BENCH_serve.json"
go run ./cmd/benchkg -bench-build "$tmp/BENCH_build.json" -entities 100000
go run ./cmd/benchkg -bench-cluster "$tmp/BENCH_cluster.json"
go run ./cmd/benchkg -bench-replica "$tmp/BENCH_replica.json"
go run ./cmd/benchkg -bench-scale "$tmp/BENCH_scale.json" -scales 10000,100000
go run ./cmd/benchkg -bench-tenant "$tmp/BENCH_tenant.json"

echo "== lookup snapshot vs committed =="
go run ./cmd/benchcompare BENCH_lookup.json "$tmp/BENCH_lookup.json"

echo "== serve snapshot vs committed =="
go run ./cmd/benchcompare BENCH_serve.json "$tmp/BENCH_serve.json"

echo "== build snapshot vs committed =="
go run ./cmd/benchcompare BENCH_build.json "$tmp/BENCH_build.json"

echo "== cluster snapshot vs committed =="
go run ./cmd/benchcompare BENCH_cluster.json "$tmp/BENCH_cluster.json"

echo "== replica snapshot vs committed =="
go run ./cmd/benchcompare BENCH_replica.json "$tmp/BENCH_replica.json"

echo "== scale snapshot vs committed =="
go run ./cmd/benchcompare BENCH_scale.json "$tmp/BENCH_scale.json"

echo "== tenant snapshot vs committed =="
go run ./cmd/benchcompare BENCH_tenant.json "$tmp/BENCH_tenant.json"

echo "bench-compare: OK"
