#!/usr/bin/env bash
# verify.sh — the full pre-merge gate: static checks, build, the test
# suite under the race detector, and a short run of the allocation
# benchmarks so hot-path regressions (see DESIGN.md "Memory discipline")
# surface before review. `make verify` runs this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

# Deeper linters run when present; the container image does not ship them
# and installing tools is out of scope for the gate, so absence is a skip,
# not a failure.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck == (not installed; skipped)"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck =="
    govulncheck ./...
else
    echo "== govulncheck == (not installed; skipped)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
# The experiments suite runs ~10-20x slower under the race detector;
# give it room beyond the default 10m package timeout.
go test -race -timeout 60m ./...

echo "== artifact parser fuzz (short) =="
# 10 seconds of coverage-guided input on the v4 section parser and the
# model-read dispatch (v4 magic sniffing plus the gob fallback). The
# checked-in corpora under testdata/ always run as part of go test; this
# adds a short exploration pass so new parser bugs surface pre-merge.
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/artifact
go test -run '^$' -fuzz FuzzReadArtifact -fuzztime 10s ./internal/core

echo "== allocation benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkPQSearch$|BenchmarkLookupAllocs' \
    -benchmem -benchtime 10x .

echo "== fast-scan kernel benchmark (short) =="
# The two compressed-scan kernels side by side (plain 8-bit ADC vs 4-bit
# fast-scan); the full-length numbers are snapshotted into BENCH_lookup.json
# (scan_pq / scan_fastscan) and diffed by `make bench-compare`.
go test -run '^$' -bench 'BenchmarkFastScan' \
    -benchmem -benchtime 100x .

echo "== metrics overhead benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkMetricsOverhead' \
    -benchmem -benchtime 100x ./internal/obs

echo "== serving benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkServe' \
    -benchmem -benchtime 10x ./internal/serve

echo "== build benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkPQBuild|BenchmarkIVFBuild' \
    -benchtime 3x .

echo "== training and ingest benchmarks (short) =="
# Deterministic vs hogwild training (det/hw1/hw2/hw4) and the streaming
# ingest loop; the full train-phase rows plus the ingest-lag snapshot live
# in BENCH_build.json (train_semantic / train_combiner / obs_ingest) and
# are diffed by `make bench-compare`.
go test -run '^$' -bench 'BenchmarkTrainEpoch|BenchmarkIngest$' \
    -benchtime 1x .

echo "== cluster benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkClusterLookup' \
    -benchtime 10x ./internal/cluster

echo "== replica benchmarks (short) =="
# Routed lookup through replicated clusters (P2R1 vs P2R2): the per-lookup
# cost of replica selection. The full replica scenarios (degraded-replica
# hedging, failover, rebalance under load) live in BENCH_replica.json and
# are diffed by `make bench-compare`.
go test -run '^$' -bench 'BenchmarkReplicaLookup' \
    -benchtime 10x ./internal/replica

echo "== tenant admission benchmarks (short) =="
# The multi-tenant admission gate (DESIGN.md §15): the uncontended
# Acquire/Release pair must stay allocation-free (TestTenantAdmissionAllocs
# asserts admitted lookups cost ≤1 alloc over the single-tenant budget; it
# runs with the race suite above) and the 429 shed path must stay cheap.
# The full multi-tenant isolation scenario (abusive tenant throttled,
# well-behaved p99, shed curve) lives in BENCH_tenant.json and is diffed
# by `make bench-compare`.
go test -run '^$' -bench 'BenchmarkAdmission' \
    -benchmem -benchtime 100x ./internal/tenant

echo "verify: OK"
