#!/usr/bin/env bash
# verify.sh — the full pre-merge gate: static checks, build, the test
# suite under the race detector, and a short run of the allocation
# benchmarks so hot-path regressions (see DESIGN.md "Memory discipline")
# surface before review. `make verify` runs this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
# The experiments suite runs ~10-20x slower under the race detector;
# give it room beyond the default 10m package timeout.
go test -race -timeout 60m ./...

echo "== allocation benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkPQSearch$|BenchmarkLookupAllocs' \
    -benchmem -benchtime 10x .

echo "== metrics overhead benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkMetricsOverhead' \
    -benchmem -benchtime 100x ./internal/obs

echo "== serving benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkServe' \
    -benchmem -benchtime 10x ./internal/serve

echo "== build benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkPQBuild|BenchmarkIVFBuild' \
    -benchtime 3x .

echo "== cluster benchmarks (short) =="
go test -run '^$' -bench 'BenchmarkClusterLookup' \
    -benchtime 10x ./internal/cluster

echo "verify: OK"
